package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Units is the declaration-driven dimensional-flow analyzer. The
// detector's contract rests on physical quantities staying in the right
// frame — phase angles in radians, impedances and susceptances in
// per-unit on the system MVA base (PAPER.md Eq. 1–3) — and a single
// degree-valued angle or SI-valued reactance reaching powerflow/detect
// silently corrupts the eigen-subspaces exactly like the bad PMU data
// the paper defends against. Declarations opt in with
//
//	//gridlint:unit <rad|deg|pu|si|hz>          on a struct field, named
//	                                            type, or package var
//	//gridlint:unit <param|result|return> <unit> in a function's doc
//	x := convert(y) //gridlint:unit <unit>      rebind a local after an
//	                                            explicit frame change
//
// and the analyzer tracks the declared frames intra-procedurally
// through assignments, arithmetic, and call boundaries: rad+deg,
// pu*si, deg into a rad parameter, and deg stored into a rad field or
// slice are errors; rad−rad is fine; anything involving an undeclared
// quantity passes (the analysis is conservative — it only speaks when
// both sides are declared). Fields whose comments document a physical
// unit without a directive are flagged so the annotation set can't rot
// behind prose. Annotations declared in dependency packages are read
// through Pass.PkgAST, so frames flow across package boundaries.
var Units = &Analyzer{
	Name: "units",
	Doc:  "dimensional-flow check of //gridlint:unit frames (rad/deg/pu/si/hz) through assignments, arithmetic, and calls",
	Run:  runUnits,
}

// UnitPrefix is the declaration directive of the units analyzer.
const UnitPrefix = "//gridlint:unit"

// unitGroup maps each valid unit to its frame group. Units sharing a
// group are alternative encodings of one quantity (radians vs degrees,
// per-unit vs SI) and may never meet in any operation; units from
// different groups may multiply or divide (that builds a new quantity)
// but never add, subtract, or compare.
var unitGroup = map[string]string{
	"rad": "angle", "deg": "angle",
	"pu": "scale", "si": "scale",
	"hz": "freq",
}

// unitWordRE spots field comments that document a physical frame in
// prose; such fields must carry a machine-readable directive too.
var unitWordRE = regexp.MustCompile(`(?i)\bradians?\b|\bdegrees?\b|p\.u\.|\bper[ -]unit\b|\bhertz\b|\bhz\b`)

// cutUnitDirective extracts the argument tokens of a unit directive.
// The marker must open the comment (prose mentioning the directive —
// doc comments, this very file — must not parse as one); a later "//"
// starts an unrelated trailing comment and ends the directive.
func cutUnitDirective(text string) ([]string, bool) {
	if !strings.HasPrefix(text, UnitPrefix) {
		return nil, false
	}
	rest := text[len(UnitPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // a longer word, e.g. //gridlint:unitless
	}
	if j := strings.Index(rest, "//"); j >= 0 {
		rest = rest[:j]
	}
	return strings.Fields(rest), true
}

// fnUnits holds one function's declared parameter and result frames.
type fnUnits struct {
	params   map[string]string // parameter name -> unit
	order    []string          // parameter names in positional order
	variadic bool
	results  map[int]string // result index -> unit
}

// pkgUnits is one package's declared frames, keyed syntactically so the
// table can be built from parsed (non-type-checked) dependency ASTs.
type pkgUnits struct {
	fields map[string]string // "Type.Field" -> unit
	named  map[string]string // "Type" -> unit
	vars   map[string]string // package-level var name -> unit
	funcs  map[string]*fnUnits
}

// mathUnits seeds the stdlib trigonometry boundary: the math package
// takes and returns radians, never degrees.
var mathUnits = map[string]*fnUnits{
	"Sin":    {params: map[string]string{"x": "rad"}, order: []string{"x"}},
	"Cos":    {params: map[string]string{"x": "rad"}, order: []string{"x"}},
	"Tan":    {params: map[string]string{"x": "rad"}, order: []string{"x"}},
	"Sincos": {params: map[string]string{"x": "rad"}, order: []string{"x"}, results: map[int]string{0: "", 1: ""}},
	"Asin":   {results: map[int]string{0: "rad"}},
	"Acos":   {results: map[int]string{0: "rad"}},
	"Atan":   {results: map[int]string{0: "rad"}},
	"Atan2":  {results: map[int]string{0: "rad"}},
}

// recvTypeName returns the base type name of a method receiver.
func recvTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// fnKey is the table key of a function declaration.
func fnKey(fd *ast.FuncDecl) string {
	if r := recvTypeName(fd.Recv); r != "" {
		return r + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// directivesIn yields the unit-directive argument lists of a comment
// group.
func directivesIn(cg *ast.CommentGroup) [][]string {
	if cg == nil {
		return nil
	}
	var out [][]string
	for _, c := range cg.List {
		if args, ok := cutUnitDirective(c.Text); ok {
			out = append(out, args)
		}
	}
	return out
}

// isFloatField reports (syntactically) whether a field's base type is a
// floating or complex scalar, possibly behind slices — the shapes a
// unit annotation makes sense on.
func isFloatField(t ast.Expr) bool {
	for {
		switch tt := t.(type) {
		case *ast.ArrayType:
			t = tt.Elt
		case *ast.StarExpr:
			t = tt.X
		case *ast.Ident:
			switch tt.Name {
			case "float64", "float32", "complex128", "complex64":
				return true
			}
			return false
		default:
			return false
		}
	}
}

// collectUnits builds a package's declared-frame table from its files.
// When pass is non-nil (the package under analysis), contextual misuse
// — a directive with the wrong arity for its position, a parameter name
// that resolves to nothing, a prose-documented field with no directive
// — is reported; dependency tables are collected silently.
func collectUnits(files []*ast.File, fset *token.FileSet, pass *Pass) *pkgUnits {
	t := &pkgUnits{
		fields: map[string]string{},
		named:  map[string]string{},
		vars:   map[string]string{},
		funcs:  map[string]*fnUnits{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						collectTypeUnits(t, ts, d, pass)
					}
				case token.VAR, token.CONST:
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, args := range append(directivesIn(vs.Doc), directivesIn(vs.Comment)...) {
							if len(args) != 1 {
								reportUnit(pass, vs.Pos(), "unit directive on a var/const takes exactly one argument: //gridlint:unit <unit>")
								continue
							}
							if unitGroup[args[0]] == "" {
								continue // bad unit name reported by the comment sweep
							}
							for _, name := range vs.Names {
								t.vars[name.Name] = args[0]
							}
						}
					}
				}
			case *ast.FuncDecl:
				collectFuncUnits(t, d, pass)
			}
		}
	}
	return t
}

// collectTypeUnits records a named type's own annotation and its struct
// fields' annotations.
func collectTypeUnits(t *pkgUnits, ts *ast.TypeSpec, decl *ast.GenDecl, pass *Pass) {
	own := append(directivesIn(ts.Doc), directivesIn(ts.Comment)...)
	if len(decl.Specs) == 1 {
		own = append(own, directivesIn(decl.Doc)...)
	}
	for _, args := range own {
		if len(args) != 1 {
			reportUnit(pass, ts.Pos(), "unit directive on a type takes exactly one argument: //gridlint:unit <unit>")
			continue
		}
		if unitGroup[args[0]] != "" {
			t.named[ts.Name.Name] = args[0]
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		dirs := append(directivesIn(field.Doc), directivesIn(field.Comment)...)
		if len(dirs) == 0 {
			if pass != nil && isFloatField(field.Type) && len(field.Names) > 0 {
				text := field.Doc.Text() + " " + field.Comment.Text()
				if unitWordRE.MatchString(text) {
					pass.Report(field.Pos(), "field %s.%s is documented in physical units (%q) but has no //gridlint:unit directive",
						ts.Name.Name, field.Names[0].Name, strings.TrimSpace(unitWordRE.FindString(text)))
				}
			}
			continue
		}
		for _, args := range dirs {
			if len(args) != 1 {
				reportUnit(pass, field.Pos(), "unit directive on a struct field takes exactly one argument: //gridlint:unit <unit>")
				continue
			}
			if unitGroup[args[0]] == "" {
				continue
			}
			for _, name := range field.Names {
				t.fields[ts.Name.Name+"."+name.Name] = args[0]
			}
		}
	}
}

// collectFuncUnits records a function's parameter/result annotations
// from its doc comment: //gridlint:unit <param|result-name|return> <unit>.
func collectFuncUnits(t *pkgUnits, fd *ast.FuncDecl, pass *Pass) {
	fn := &fnUnits{params: map[string]string{}, results: map[int]string{}}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.Ellipsis); ok {
				fn.variadic = true
			}
			for _, name := range field.Names {
				fn.order = append(fn.order, name.Name)
			}
		}
	}
	resultIndex := map[string]int{"return": 0}
	idx := 0
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				resultIndex[name.Name] = idx
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	any := false
	for _, args := range directivesIn(fd.Doc) {
		if len(args) != 2 {
			reportUnit(pass, fd.Pos(), "unit directive in a function doc takes two arguments: //gridlint:unit <param|result|return> <unit>")
			continue
		}
		name, unit := args[0], args[1]
		if unitGroup[unit] == "" {
			continue
		}
		if containsName(fn.order, name) {
			fn.params[name] = unit
			any = true
			continue
		}
		if i, ok := resultIndex[name]; ok {
			fn.results[i] = unit
			any = true
			continue
		}
		reportUnit(pass, fd.Pos(), "unit directive names %q, which is neither a parameter, a named result, nor \"return\" of %s", name, fd.Name.Name)
	}
	if any {
		t.funcs[fnKey(fd)] = fn
	}
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// reportUnit reports through pass when collecting the package under
// analysis; dependency tables collect silently.
func reportUnit(pass *Pass, pos token.Pos, format string, args ...any) {
	if pass != nil {
		pass.Report(pos, format, args...)
	}
}

// unitsChecker is the per-package analysis state.
type unitsChecker struct {
	pass   *Pass
	tables map[string]*pkgUnits
	// lineUnits maps file:line to a one-argument directive — the local
	// rebinding form used after explicit frame conversions.
	lineUnits map[string]map[int]string
}

func runUnits(pass *Pass) error {
	u := &unitsChecker{pass: pass, tables: map[string]*pkgUnits{}, lineUnits: map[string]map[int]string{}}
	u.tables[pass.Pkg.Path()] = collectUnits(pass.Files, pass.Fset, pass)
	// One sweep over every unit directive: validate grammar and unit
	// names once, and index the single-argument (rebinding) form by
	// line for statement-level lookups.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				args, ok := cutUnitDirective(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				switch len(args) {
				case 1:
					if unitGroup[args[0]] == "" {
						pass.Report(c.Pos(), "unknown unit %q in unit directive (want rad, deg, pu, si, or hz)", args[0])
						continue
					}
					m := u.lineUnits[pos.Filename]
					if m == nil {
						m = map[int]string{}
						u.lineUnits[pos.Filename] = m
					}
					m[pos.Line] = args[0]
				case 2:
					if unitGroup[args[1]] == "" {
						pass.Report(c.Pos(), "unknown unit %q in unit directive (want rad, deg, pu, si, or hz)", args[1])
					}
				default:
					pass.Report(c.Pos(), "malformed unit directive: want //gridlint:unit [name] <unit>")
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				u.checkFunc(fd)
			}
		}
	}
	return nil
}

// table returns (building lazily) the declared-frame table of a package
// by import path.
func (u *unitsChecker) table(path string) *pkgUnits {
	if t, ok := u.tables[path]; ok {
		return t
	}
	var files []*ast.File
	if u.pass.PkgAST != nil {
		files = u.pass.PkgAST(path)
	}
	t := collectUnits(files, u.pass.Fset, nil)
	u.tables[path] = t
	return t
}

// checkFunc analyzes one function body: binds annotated parameters,
// then flows frames through statements in source order.
func (u *unitsChecker) checkFunc(fd *ast.FuncDecl) {
	state := map[types.Object]string{}
	fn := u.table(u.pass.Pkg.Path()).funcs[fnKey(fd)]
	if fn != nil && fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if unit := fn.params[name.Name]; unit != "" {
					if obj := u.pass.Info.Defs[name]; obj != nil {
						state[obj] = unit
					}
				}
			}
		}
	}
	var results map[int]string
	if fn != nil {
		results = fn.results
	}
	u.walkBody(fd.Body, state, results)
}

// walkBody flows frames through one body. Function literals share the
// enclosing state (closures see the same frames) but have their own —
// unannotated — results.
func (u *unitsChecker) walkBody(body ast.Node, state map[types.Object]string, results map[int]string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			u.walkBody(n.Body, state, nil)
			return false
		case *ast.AssignStmt:
			u.assign(n, state)
		case *ast.RangeStmt:
			if unit := u.unitOf(n.X, state); unit != "" {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := u.pass.Info.ObjectOf(id); obj != nil {
						state[obj] = unit
					}
				}
			}
		case *ast.BinaryExpr:
			u.checkBinary(n, state)
		case *ast.CallExpr:
			u.checkCall(n, state)
		case *ast.CompositeLit:
			u.checkComposite(n, state)
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				want := results[i]
				if want == "" {
					continue
				}
				if got := u.unitOf(res, state); got != "" && got != want {
					u.pass.Report(res.Pos(), "returning %s value where the result is declared %s", got, want)
				}
			}
		}
		return true
	})
}

// assign binds and checks one assignment statement.
func (u *unitsChecker) assign(st *ast.AssignStmt, state map[types.Object]string) {
	// Compound ops: x op= y behaves like the binary op for mixing rules.
	if op, ok := compoundOp(st.Tok); ok && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		lu := u.unitOf(st.Lhs[0], state)
		ru := u.unitOf(st.Rhs[0], state)
		u.checkMix(op, lu, ru, st.Pos())
		if lu == "" && ru != "" && (op == token.ADD || op == token.SUB) {
			u.bindLHS(st.Lhs[0], ru, state, st.Pos())
		}
		return
	}
	rhs := make([]string, len(st.Lhs))
	if len(st.Rhs) == len(st.Lhs) {
		for i, e := range st.Rhs {
			rhs[i] = u.unitOf(e, state)
		}
	} else if len(st.Rhs) == 1 {
		// Multi-value call/assert: per-result units when annotated.
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			if fn := u.calleeUnits(call); fn != nil {
				for i := range rhs {
					rhs[i] = fn.results[i]
				}
			}
		}
	}
	// A trailing //gridlint:unit <unit> on the statement line rebinds
	// the (single) destination — the escape hatch after an explicit
	// frame conversion like rad→deg.
	if len(st.Lhs) == 1 {
		pos := u.pass.Fset.Position(st.End())
		if unit := u.lineUnits[pos.Filename][pos.Line]; unit != "" {
			rhs[0] = unit
			u.bindLHS(st.Lhs[0], unit, state, st.Pos())
			return
		}
	}
	for i, lhs := range st.Lhs {
		u.bindLHS(lhs, rhs[i], state, st.Pos())
	}
}

func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	}
	return token.ILLEGAL, false
}

// bindLHS records (or checks) the frame flowing into one assignment
// destination.
func (u *unitsChecker) bindLHS(lhs ast.Expr, unit string, state map[types.Object]string, pos token.Pos) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := u.pass.Info.ObjectOf(l)
		if v, ok := obj.(*types.Var); ok {
			if unit != "" {
				state[v] = unit
			} else {
				delete(state, v) // reassigned with an undeclared value
			}
		}
	case *ast.IndexExpr:
		if unit == "" {
			return
		}
		switch x := ast.Unparen(l.X).(type) {
		case *ast.Ident:
			obj := u.pass.Info.ObjectOf(x)
			if v, ok := obj.(*types.Var); ok {
				if cur := state[v]; cur == "" {
					state[v] = unit
				} else if cur != unit {
					u.pass.Report(pos, "storing %s value into %s, whose elements carry %s", unit, x.Name, cur)
				}
			}
		case *ast.SelectorExpr:
			if want := u.fieldUnit(x); want != "" && want != unit {
				u.pass.Report(pos, "storing %s value into a field declared %s", unit, want)
			}
		}
	case *ast.SelectorExpr:
		if unit == "" {
			return
		}
		if want := u.fieldUnit(l); want != "" && want != unit {
			u.pass.Report(pos, "assigning %s value to a field declared %s", unit, want)
		}
	}
}

// checkBinary enforces the mixing rules on one operator.
func (u *unitsChecker) checkBinary(e *ast.BinaryExpr, state map[types.Object]string) {
	switch e.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		u.checkMix(e.Op, u.unitOf(e.X, state), u.unitOf(e.Y, state), e.OpPos)
	}
}

// checkMix reports when two declared frames meet illegally under op:
// same-group units (rad vs deg, pu vs si) never mix; cross-group units
// may multiply/divide but not add, subtract, or compare.
func (u *unitsChecker) checkMix(op token.Token, a, b string, pos token.Pos) {
	if a == "" || b == "" || a == b {
		return
	}
	if unitGroup[a] == unitGroup[b] {
		u.pass.Report(pos, "unit mismatch: %s %s %s mixes two encodings of the same quantity", a, op, b)
		return
	}
	if op != token.MUL && op != token.QUO {
		u.pass.Report(pos, "unit mismatch: %s %s %s combines different physical frames", a, op, b)
	}
}

// calleeUnits resolves a call's annotated signature, or nil.
func (u *unitsChecker) calleeUnits(call *ast.CallExpr) *fnUnits {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = u.pass.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = u.pass.Info.ObjectOf(fun.Sel)
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return nil
	}
	if f.Pkg().Path() == "math" {
		return mathUnits[f.Name()]
	}
	key := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			key = named.Obj().Name() + "." + f.Name()
		}
	}
	return u.table(f.Pkg().Path()).funcs[key]
}

// checkCall verifies argument frames against an annotated callee.
func (u *unitsChecker) checkCall(call *ast.CallExpr, state map[types.Object]string) {
	if tv, ok := u.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: unit passes through, checked at use sites
	}
	fn := u.calleeUnits(call)
	if fn == nil || len(fn.order) == 0 {
		return
	}
	for i, arg := range call.Args {
		var name string
		switch {
		case i < len(fn.order):
			name = fn.order[i]
		case fn.variadic:
			name = fn.order[len(fn.order)-1]
		default:
			continue
		}
		want := fn.params[name]
		if want == "" {
			continue
		}
		if got := u.unitOf(arg, state); got != "" && got != want {
			u.pass.Report(arg.Pos(), "passing %s value as parameter %s, declared %s", got, name, want)
		}
	}
}

// checkComposite verifies struct-literal elements against annotated
// fields.
func (u *unitsChecker) checkComposite(lit *ast.CompositeLit, state map[types.Object]string) {
	named := namedOf(u.pass.Info.TypeOf(lit))
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := u.table(named.Obj().Pkg().Path()).fields
	typeName := named.Obj().Name()
	for i, el := range lit.Elts {
		var fieldName string
		value := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				fieldName = id.Name
			}
			value = kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		want := fields[typeName+"."+fieldName]
		if want == "" {
			continue
		}
		if got := u.unitOf(value, state); got != "" && got != want {
			u.pass.Report(value.Pos(), "field %s.%s is declared %s but receives a %s value", typeName, fieldName, want, got)
		}
	}
}

// namedOf peels pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for t != nil {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
	return nil
}

// fieldUnit resolves the declared frame of a field selection, or "".
func (u *unitsChecker) fieldUnit(sel *ast.SelectorExpr) string {
	if s, ok := u.pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		named := namedOf(s.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return u.table(named.Obj().Pkg().Path()).fields[named.Obj().Name()+"."+s.Obj().Name()]
	}
	// Qualified identifier: pkg.Var.
	if v, ok := u.pass.Info.ObjectOf(sel.Sel).(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
		return u.table(v.Pkg().Path()).vars[v.Name()]
	}
	return ""
}

// unitOf derives the frame of an expression from the declared tables
// and the local flow state; "" means undeclared (never an error by
// itself).
func (u *unitsChecker) unitOf(expr ast.Expr, state map[types.Object]string) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := u.pass.Info.ObjectOf(e)
		if obj == nil {
			return ""
		}
		if unit, ok := state[obj]; ok {
			return unit
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return u.table(v.Pkg().Path()).vars[v.Name()]
		}
		if c, ok := obj.(*types.Const); ok && c.Pkg() != nil && c.Parent() == c.Pkg().Scope() {
			return u.table(c.Pkg().Path()).vars[c.Name()]
		}
		return u.namedUnit(u.pass.Info.TypeOf(e))
	case *ast.SelectorExpr:
		if unit := u.fieldUnit(e); unit != "" {
			return unit
		}
		return u.namedUnit(u.pass.Info.TypeOf(e))
	case *ast.IndexExpr:
		return u.unitOf(e.X, state)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.unitOf(e.X, state)
		}
		return ""
	case *ast.CallExpr:
		if tv, ok := u.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return u.unitOf(e.Args[0], state)
		}
		if fn := u.calleeUnits(e); fn != nil {
			return fn.results[0]
		}
		return ""
	case *ast.BinaryExpr:
		a, b := u.unitOf(e.X, state), u.unitOf(e.Y, state)
		switch e.Op {
		case token.ADD, token.SUB:
			// Sum/difference stays in the known frame; conflicting
			// frames are reported at the operator and yield no frame.
			if a == b {
				return a
			}
			if a == "" {
				return b
			}
			if b == "" {
				return a
			}
			return ""
		case token.MUL:
			if a == b {
				return a // pu*pu stays in the per-unit frame
			}
			return ""
		}
		return ""
	}
	return u.namedUnit(u.pass.Info.TypeOf(expr))
}

// namedUnit returns the annotation of an expression's named type
// (`type Angle float64 //gridlint:unit rad`), if any.
func (u *unitsChecker) namedUnit(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return u.table(named.Obj().Pkg().Path()).named[named.Obj().Name()]
}
