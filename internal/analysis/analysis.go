// Package analysis is gridlint's multichecker framework: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) static-analysis
// harness plus the repo-tailored analyzers that gate every PR (see
// DESIGN.md "Static analysis & race gate").
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// without the dependency: an Analyzer inspects one type-checked package
// through a Pass and reports Diagnostics; the Runner loads packages,
// applies //gridlint:ignore suppressions, and aggregates results.
//
// Three comment directives make up the whole annotation language:
//
//	//gridlint:ignore <analyzer> <reason...>   suppress one finding
//	//gridlint:unit <rad|deg|pu|si|hz>         declare a physical frame (units analyzer)
//	//gridlint:zeroalloc                       pin a function allocation-free (allocfree analyzer)
//
// Suppression: a diagnostic is silenced by an ignore directive placed
// either on the same line as the offending code or on the line directly
// above it. The analyzer name "all" silences every analyzer. A reason
// is mandatory — ignore directives without one are themselves reported
// as diagnostics, so suppressions stay auditable; the ignoreaudit
// analyzer additionally flags directives that name an unknown analyzer
// or no longer suppress anything on the current tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity tiers a diagnostic. Error findings fail the gate (exit 1);
// warn findings are printed and reported in -json output but do not
// fail the build on their own.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// a severity tier, and a human-readable message. Suppressed findings
// are kept (flagged, with the suppressing reason) so machine-readable
// reports can audit the suppression ledger; the text gate only prints
// and counts unsuppressed ones.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Severity string
	Message  string
	// Suppressed marks a finding silenced by an ignore directive;
	// SuppressedBy carries that directive's reason.
	Suppressed   bool
	SuppressedBy string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-line description shown by gridlint -list.
	Doc string
	// Severity is the tier of this analyzer's findings (SeverityError
	// when empty).
	Severity string
	// Run inspects the package behind pass and reports findings through
	// pass.Report. Returning an error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// severity returns the analyzer's tier, defaulting to error.
func (a *Analyzer) severity() string {
	if a.Severity == "" {
		return SeverityError
	}
	return a.Severity
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// TestFiles are the package's _test.go files (in-package and
	// external), parsed but not type-checked. Analyzers that cross-check
	// runtime pins (allocfree) read them; most analyzers ignore them.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	// Module is the module path of the repo under analysis; analyzers
	// use it to classify callees as repo-internal. Empty disables the
	// classification (golden tests).
	Module string
	// PkgAST returns the parsed (comment-bearing, non-type-checked)
	// files of a module-internal package by import path, or nil when
	// unavailable. The units analyzer uses it to read annotations
	// declared in dependency packages.
	PkgAST func(importPath string) []*ast.File

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.severity(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IgnorePrefix is the comment directive that suppresses a diagnostic.
const IgnorePrefix = "//gridlint:ignore"

// ignoreDirective is one parsed //gridlint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	// matched records whether the directive suppressed at least one
	// diagnostic in this run — the staleness signal ignoreaudit reads.
	matched bool
}

// parseIgnores extracts the ignore directives of a file and reports
// malformed ones (missing analyzer or reason) as diagnostics.
func parseIgnores(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "gridlint",
					Severity: SeverityError,
					Message:  "malformed ignore directive: want //gridlint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, &ignoreDirective{pos: pos, analyzer: name, reason: reason})
		}
	}
	return out
}

// markSuppressed flags diagnostics covered by an ignore directive on the
// same line or the line directly above, and records on each directive
// whether it matched anything. Directives are matched per file. The
// framework's own "gridlint" diagnostics can never be suppressed.
func markSuppressed(diags []Diagnostic, ignores map[string][]*ignoreDirective) {
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "gridlint" || d.Suppressed {
			continue
		}
		for _, dir := range ignores[d.Pos.Filename] {
			if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				d.Suppressed = true
				d.SuppressedBy = dir.reason
				dir.matched = true
				break
			}
		}
	}
}

// unsuppressed filters to the findings that survive the ignore ledger.
func unsuppressed(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// sortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
