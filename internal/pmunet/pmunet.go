// Package pmunet models the measurement infrastructure of Figure 1 in
// the paper: one PMU per observed bus, PMUs grouped geographically under
// Phasor Data Concentrators (PDCs), and PDCs feeding the control center.
// It also generates the missing-data patterns of Figure 6 and the
// reliability-weighted pattern distribution of Eqs. (13)–(15).
package pmunet

import (
	"fmt"
	"math/rand"
	"sort"

	"pmuoutage/internal/grid"
)

// Network describes the PMU monitoring overlay of a grid: full
// observability (one PMU per bus, as assumed in §V) partitioned into PDC
// clusters.
type Network struct {
	G        *grid.Grid
	Clusters [][]int // bus indices per PDC, each sorted ascending
	cluster  []int   // bus -> cluster index
}

// Build partitions the grid's buses into nClusters geographically
// contiguous PDC clusters by multi-source BFS from spread-out seeds.
// The partition is deterministic for a given grid.
func Build(g *grid.Grid, nClusters int) (*Network, error) {
	n := g.N()
	if nClusters <= 0 || nClusters > n {
		return nil, fmt.Errorf("pmunet: invalid cluster count %d for %d buses", nClusters, n)
	}
	// Seed selection: farthest-point sampling on hop distance keeps the
	// clusters spread out like real PDC regions.
	seeds := []int{0}
	seedDists := [][]int{g.HopDistances(0)}
	for len(seeds) < nClusters {
		best, bestDist := -1, -1
		for v := 0; v < n; v++ {
			d := 1 << 30
			for _, hd := range seedDists {
				if hd[v] >= 0 && hd[v] < d {
					d = hd[v]
				}
			}
			if d > bestDist && d < 1<<30 {
				best, bestDist = v, d
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		seedDists = append(seedDists, g.HopDistances(best))
	}
	// Multi-source BFS growth with a capacity cap so the partition stays
	// balanced — real PDCs serve similar-sized regions, and badly skewed
	// clusters starve the out-of-cluster detection groups of members.
	cap := (n + len(seeds) - 1) / len(seeds)
	if cap < 2 {
		cap = 2
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	size := make([]int, len(seeds))
	type item struct{ bus, c int }
	queue := make([]item, 0, n)
	for c, s := range seeds {
		assign[s] = c
		size[c]++
		queue = append(queue, item{s, c})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, nb := range gAdj(g, it.bus) {
			if assign[nb] < 0 && size[it.c] < cap {
				assign[nb] = it.c
				size[it.c]++
				queue = append(queue, item{nb, it.c})
			}
		}
	}
	// Leftovers (neighbouring clusters all full, or disconnected): join
	// the smallest cluster so balance is preserved.
	for i := range assign {
		if assign[i] < 0 {
			best := 0
			for c := 1; c < len(size); c++ {
				if size[c] < size[best] {
					best = c
				}
			}
			assign[i] = best
			size[best]++
		}
	}
	clusters := make([][]int, len(seeds))
	for v, c := range assign {
		clusters[c] = append(clusters[c], v)
	}
	for _, c := range clusters {
		sort.Ints(c)
	}
	return &Network{G: g, Clusters: clusters, cluster: assign}, nil
}

// FromClusters reconstructs a Network from an explicit PDC partition —
// the decode path of a serialized detection model, where the clusters
// learned at training time must be restored exactly rather than
// re-derived from the grid. The partition must cover every bus exactly
// once; member lists are kept in the given order (Build emits them
// sorted, and codecs preserve that).
func FromClusters(g *grid.Grid, clusters [][]int) (*Network, error) {
	n := g.N()
	if len(clusters) == 0 {
		return nil, fmt.Errorf("pmunet: empty cluster partition")
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for c, members := range clusters {
		for _, b := range members {
			if b < 0 || b >= n {
				return nil, fmt.Errorf("pmunet: cluster %d member %d out of range %d", c, b, n)
			}
			if assign[b] >= 0 {
				return nil, fmt.Errorf("pmunet: bus %d assigned to clusters %d and %d", b, assign[b], c)
			}
			assign[b] = c
		}
	}
	for b, c := range assign {
		if c < 0 {
			return nil, fmt.Errorf("pmunet: bus %d missing from the cluster partition", b)
		}
	}
	copied := make([][]int, len(clusters))
	for c, members := range clusters {
		copied[c] = append([]int(nil), members...)
	}
	return &Network{G: g, Clusters: copied, cluster: assign}, nil
}

// ClusterOf returns the PDC cluster index of a bus.
func (nw *Network) ClusterOf(bus int) int { return nw.cluster[bus] }

// NumClusters returns the number of PDC clusters.
func (nw *Network) NumClusters() int { return len(nw.Clusters) }

// Mask marks which bus measurements are missing in one sample: true
// means the measurement is NOT available at the control center.
type Mask []bool

// NoneMissing returns an all-available mask for n buses.
func NoneMissing(n int) Mask { return make(Mask, n) }

// AnyMissing reports whether at least one measurement is missing.
func (m Mask) AnyMissing() bool {
	for _, b := range m {
		if b {
			return true
		}
	}
	return false
}

// MissingCount returns the number of missing measurements.
func (m Mask) MissingCount() int {
	c := 0
	for _, b := range m {
		if b {
			c++
		}
	}
	return c
}

// Available returns the indices with data present, ascending.
func (m Mask) Available() []int {
	out := make([]int, 0, len(m))
	for i, b := range m {
		if !b {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a copy of the mask.
func (m Mask) Clone() Mask {
	c := make(Mask, len(m))
	copy(c, m)
	return c
}

// OutageLocationMask returns the Figure 6 (top) pattern: measurements of
// the two endpoint buses of the outaged line are missing — the PMUs at
// the failure location are dead or cut off by the outage itself.
func (nw *Network) OutageLocationMask(e grid.Line) Mask {
	m := NoneMissing(nw.G.N())
	a, b := nw.G.Endpoints(e)
	m[a], m[b] = true, true
	return m
}

// OutageNeighborhoodMask extends OutageLocationMask to the endpoints'
// 1-hop neighbourhood (§III-B's "immediate neighborhood" pattern).
func (nw *Network) OutageNeighborhoodMask(e grid.Line) Mask {
	m := nw.OutageLocationMask(e)
	a, b := nw.G.Endpoints(e)
	for _, v := range nw.G.Neighbors(a) {
		m[v] = true
	}
	for _, v := range nw.G.Neighbors(b) {
		m[v] = true
	}
	return m
}

// RandomMask returns the Figure 6 (middle/bottom) pattern: k distinct
// buses missing uniformly at random, optionally excluding a set of buses
// (e.g. the outage endpoints, for the uncorrelated-missing study).
func (nw *Network) RandomMask(k int, exclude []int, rng *rand.Rand) Mask {
	n := nw.G.N()
	m := NoneMissing(n)
	ex := map[int]bool{}
	for _, v := range exclude {
		ex[v] = true
	}
	pool := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !ex[v] {
			pool = append(pool, v)
		}
	}
	if k > len(pool) {
		k = len(pool)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for _, v := range pool[:k] {
		m[v] = true
	}
	return m
}

// ClusterMask marks a whole PDC cluster as missing — a PDC failure or a
// targeted attack on one collection point (§III-B).
func (nw *Network) ClusterMask(c int) Mask {
	m := NoneMissing(nw.G.N())
	for _, v := range nw.Clusters[c] {
		m[v] = true
	}
	return m
}

// Union merges masks (a measurement is missing if missing in any).
func Union(ms ...Mask) Mask {
	if len(ms) == 0 {
		return nil
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		for i, b := range m {
			if b {
				out[i] = true
			}
		}
	}
	return out
}

func gAdj(g *grid.Grid, v int) []int { return g.Neighbors(v) }
