package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveCGMatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		cg, err := SolveCG(a, b, CGOptions{})
		if err != nil {
			return false
		}
		lu, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range cg {
			if math.Abs(cg[i]-lu[i]) > 1e-6*(1+math.Abs(lu[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveCGLaplacianLike(t *testing.T) {
	// A reduced grid Laplacian: ring plus chords, one node grounded.
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := NewDense(n, n)
	add := func(i, j int, w float64) {
		if i >= 0 && j >= 0 {
			a.Add(i, j, -w)
			a.Add(j, i, -w)
		}
		if i >= 0 {
			a.Add(i, i, w)
		}
		if j >= 0 {
			a.Add(j, j, w)
		}
	}
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = -1 // grounded node closes the ring
		}
		add(i, j, 5+10*rng.Float64())
	}
	for k := 0; k < n; k++ {
		add(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
	}
	// Self-loop artifacts from i==j chords inflate the diagonal only,
	// which keeps the matrix SPD.
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := SolveCG(a, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := Sub(b, a.MulVec(x))
	if Norm2(r) > 1e-8*Norm2(b) {
		t.Fatalf("relative residual %v", Norm2(r)/Norm2(b))
	}
}

func TestSolveCGValidation(t *testing.T) {
	if _, err := SolveCG(NewDense(2, 3), []float64{1, 2}, CGOptions{}); err == nil {
		t.Fatal("expected square error")
	}
	if _, err := SolveCG(Identity(2), []float64{1}, CGOptions{}); err == nil {
		t.Fatal("expected rhs length error")
	}
	// Non-positive diagonal rejected.
	bad := NewDenseData(2, 2, []float64{-1, 0, 0, 1})
	if _, err := SolveCG(bad, []float64{1, 1}, CGOptions{}); err == nil {
		t.Fatal("expected positive-definite error")
	}
	// Indefinite matrix with positive diagonal fails on curvature when
	// the rhs excites the negative eigendirection ([1,-1] here).
	indef := NewDenseData(2, 2, []float64{1, 2, 2, 1})
	if _, err := SolveCG(indef, []float64{1, -1}, CGOptions{}); err == nil {
		t.Fatal("expected curvature error")
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	x, err := SolveCG(Identity(3), []float64{0, 0, 0}, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func BenchmarkSolveCGLaplacian117(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 117
	a := NewDense(n, n)
	for i := 0; i < n-1; i++ {
		w := 5 + 10*rng.Float64()
		a.Add(i, i, w)
		a.Add(i+1, i+1, w)
		a.Add(i, i+1, -w)
		a.Add(i+1, i, -w)
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCG(a, rhs, CGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
