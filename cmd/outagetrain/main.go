// Command outagetrain trains an outage-detection model and writes it as
// an immutable, versioned artifact: the train half of the
// train-once/serve-many split. The artifact carries a format version, a
// SHA-256 content fingerprint, and every piece of learned state, so
// cmd/outaged can boot from it (-models), hot-swap onto it
// (POST /v1/reload), and any Go program can serve it via
// pmuoutage.DecodeModel + NewSystemFromModel — all without repeating
// the power-flow simulation or SVD training.
//
// It also owns the incremental-update path: -patch-lines re-simulates
// a handful of lines against a saved base model and writes a small
// fingerprint-pinned patch artifact, and -apply splices such a patch
// into its base offline — the same artifact POST /v1/reload
// (patch_path) applies to a live shard without restarting it.
//
// Usage:
//
//	outagetrain -case ieee14 -o ieee14.model.json [-dc] [-steps 40] [-seed 1]
//	outagetrain -describe ieee14.model.json
//	outagetrain -base ieee14.model.json -patch-lines 3,7 -seed 77 -o delta.patch.json
//	outagetrain -base ieee14.model.json -apply delta.patch.json -o ieee14.v2.model.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pmuoutage"
)

func main() {
	var (
		caseName = flag.String("case", "ieee14", "built-in test system to train on")
		out      = flag.String("o", "", "output artifact path (required unless -describe)")
		clusters = flag.Int("clusters", 0, "PDC clusters (0 = max(3, buses/10))")
		steps    = flag.Int("steps", 0, "training window length per scenario (0 = library default)")
		seed     = flag.Int64("seed", 1, "training seed")
		dc       = flag.Bool("dc", false, "use the linear DC power-flow substrate (faster)")
		workers  = flag.Int("workers", 0, "training worker pool (0 = GOMAXPROCS)")
		describe = flag.String("describe", "", "print a saved artifact's metadata and exit")
		base     = flag.String("base", "", "base model artifact for -patch-lines / -apply")
		lines    = flag.String("patch-lines", "", "comma-separated line indices to refresh into a patch (needs -base, -o)")
		apply    = flag.String("apply", "", "patch artifact to splice into -base, writing the patched model to -o")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *describe != "":
		err = runDescribe(os.Stdout, *describe)
	case *out == "":
		flag.Usage()
		os.Exit(2)
	case *lines != "":
		err = runPatch(ctx, os.Stdout, *base, *lines, *seed, *steps, *out)
	case *apply != "":
		err = runApply(os.Stdout, *base, *apply, *out)
	default:
		opts := pmuoutage.Options{
			Case: *caseName, Clusters: *clusters, TrainSteps: *steps,
			Seed: *seed, UseDC: *dc, Workers: *workers,
		}
		err = runTrain(ctx, os.Stdout, opts, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "outagetrain:", err)
		os.Exit(1)
	}
}

// runTrain trains the model and writes the sealed artifact.
func runTrain(ctx context.Context, w io.Writer, opts pmuoutage.Options, path string) error {
	m, err := pmuoutage.TrainModelContext(ctx, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "trained  %s (seed %d)\n", m.Case(), m.Options().Seed)
	fmt.Fprintf(w, "saved    %s\n", path)
	return describeModel(w, m)
}

// runPatch re-simulates the named lines against the base model and
// writes the incremental patch artifact.
func runPatch(ctx context.Context, w io.Writer, basePath, lineList string, seed int64, steps int, outPath string) error {
	if basePath == "" {
		return fmt.Errorf("-patch-lines needs -base")
	}
	var idx []int
	for _, tok := range strings.Split(lineList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("-patch-lines %q: %v", lineList, err)
		}
		idx = append(idx, n)
	}
	base, err := loadModel(basePath)
	if err != nil {
		return err
	}
	p, err := pmuoutage.TrainModelPatchContext(ctx, base, pmuoutage.PatchSpec{Lines: idx, Seed: seed, Steps: steps})
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := p.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "patched  lines %v (seed %d)\n", p.Lines(), seed)
	fmt.Fprintf(w, "saved    %s\n", outPath)
	fmt.Fprintf(w, "patch    %s\n", p.Fingerprint())
	fmt.Fprintf(w, "base     %s\n", p.BaseFingerprint())
	fmt.Fprintf(w, "result   %s\n", p.ResultFingerprint())
	return nil
}

// runApply splices a patch into its base model offline and writes the
// patched artifact — the same operation POST /v1/reload (patch_path)
// performs against a live shard.
func runApply(w io.Writer, basePath, patchPath, outPath string) error {
	if basePath == "" {
		return fmt.Errorf("-apply needs -base")
	}
	base, err := loadModel(basePath)
	if err != nil {
		return err
	}
	pf, err := os.Open(patchPath)
	if err != nil {
		return err
	}
	p, err := pmuoutage.DecodePatch(pf)
	_ = pf.Close()
	if err != nil {
		return err
	}
	m, err := p.Apply(base)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "applied  %s\n", patchPath)
	fmt.Fprintf(w, "saved    %s\n", outPath)
	return describeModel(w, m)
}

// loadModel reads one model artifact from disk.
func loadModel(path string) (*pmuoutage.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pmuoutage.DecodeModel(f)
}

// runDescribe prints a saved artifact's metadata after a full decode —
// so describing also verifies version, fingerprint, and structure.
func runDescribe(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := pmuoutage.DecodeModel(f)
	if err != nil {
		return err
	}
	return describeModel(w, m)
}

func describeModel(w io.Writer, m *pmuoutage.Model) error {
	sys, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "case     %s\n", m.Case())
	fmt.Fprintf(w, "version  %d\n", m.FormatVersion())
	fmt.Fprintf(w, "model    %s\n", m.Fingerprint())
	fmt.Fprintf(w, "buses    %d\n", sys.Buses())
	fmt.Fprintf(w, "lines    %d (%d with detectable outages)\n", len(sys.Lines()), len(sys.ValidLines()))
	fmt.Fprintf(w, "clusters %d\n", len(sys.Clusters()))
	return nil
}
