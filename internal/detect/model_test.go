package detect

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"pmuoutage/internal/dataset"
)

// snapshotFixture trains the golden fixture and snapshots it.
func snapshotFixture(t *testing.T) (*Detector, *Model, *dataset.Data) {
	t.Helper()
	det, d := trainFixture(t, 0)
	m, err := det.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return det, m, d
}

// detectAll runs the detector over the first sample of every valid line
// plus one normal sample and returns the results.
func detectAll(t *testing.T, det *Detector, d *dataset.Data) []*Result {
	t.Helper()
	var out []*Result
	samples := []dataset.Sample{d.Normal.Samples[0]}
	for _, e := range d.ValidLines {
		samples = append(samples, d.Outages[e].Samples[0])
	}
	for _, s := range samples {
		r, err := det.Detect(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// TestModelRoundTripDetectsIdentically is the golden guarantee of the
// artifact layer: Decode(Encode(Snapshot(det))) must detect
// byte-identically to the trained detector, and a second encode of the
// decoded model must reproduce the artifact bytes exactly.
func TestModelRoundTripDetectsIdentically(t *testing.T) {
	det, m, d := snapshotFixture(t)

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := append([]byte(nil), buf.Bytes()...)

	m2, err := DecodeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Fingerprint != m.Fingerprint {
		t.Fatalf("fingerprint changed over the wire: %s vs %s", m2.Fingerprint, m.Fingerprint)
	}
	det2, err := FromModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	want := detectAll(t, det, d)
	got := detectAll(t, det2, d)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded model detects differently from the trained detector")
	}

	var buf2 bytes.Buffer
	if err := m2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), artifact) {
		t.Fatal("re-encoding a decoded model does not reproduce the artifact bytes")
	}
}

// TestModelFromModelSharesBehavior checks the in-memory path (no codec):
// FromModel(Snapshot(det)) equals det in behavior and in learned state.
func TestModelFromModelSharesBehavior(t *testing.T) {
	det, m, d := snapshotFixture(t)
	det2, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if det2.NoOutageThreshold() != det.NoOutageThreshold() { //gridlint:ignore floatcmp byte-identity is the contract under test
		t.Fatal("threshold changed through Snapshot/FromModel")
	}
	if !reflect.DeepEqual(detectAll(t, det2, d), detectAll(t, det, d)) {
		t.Fatal("FromModel detector behaves differently")
	}
}

// TestModelWorkersEquivalence pins training determinism at the artifact
// level: any worker count must produce the same fingerprint once the
// config's Workers knob (runtime, not learned state) is aligned.
func TestModelWorkersEquivalence(t *testing.T) {
	base, _ := trainFixture(t, 1)
	bm, err := base.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 8} {
		det, _ := trainFixture(t, workers)
		m, err := det.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		m.Config.Workers = bm.Config.Workers
		if err := m.Seal(); err != nil {
			t.Fatal(err)
		}
		if m.Fingerprint != bm.Fingerprint {
			t.Fatalf("workers=%d: model fingerprint %s differs from sequential %s",
				workers, m.Fingerprint, bm.Fingerprint)
		}
	}
}

// TestDecodeModelVersionMismatch: artifacts from another format version
// are rejected with ErrModelVersion, not half-read.
func TestDecodeModelVersionMismatch(t *testing.T) {
	_, m, _ := snapshotFixture(t)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field through generic JSON so the fingerprint
	// is not what trips the check.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	raw["format_version"] = json.RawMessage("99")
	tampered, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(tampered)); !errors.Is(err, ErrModelVersion) {
		t.Fatalf("decoding version 99 artifact: got %v, want ErrModelVersion", err)
	}
	if err := (&Model{FormatVersion: 99}).Encode(&bytes.Buffer{}); !errors.Is(err, ErrModelVersion) {
		t.Fatalf("encoding foreign version: got %v, want ErrModelVersion", err)
	}
}

// TestDecodeModelCorruption: truncation, bit flips, and fingerprint
// tampering all surface as ErrModelCorrupt.
func TestDecodeModelCorruption(t *testing.T) {
	_, m, _ := snapshotFixture(t)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := buf.String()

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeModel(strings.NewReader(artifact[:len(artifact)/2])); !errors.Is(err, ErrModelCorrupt) {
			t.Fatalf("got %v, want ErrModelCorrupt", err)
		}
	})
	t.Run("not json", func(t *testing.T) {
		if _, err := DecodeModel(strings.NewReader("not a model")); !errors.Is(err, ErrModelCorrupt) {
			t.Fatalf("got %v, want ErrModelCorrupt", err)
		}
	})
	t.Run("flipped payload", func(t *testing.T) {
		// Corrupt the threshold value: the artifact stays valid JSON but
		// the content no longer hashes to the recorded fingerprint.
		tampered := strings.Replace(artifact, `"no_outage_threshold":`, `"no_outage_threshold":1e9,"x":`, 1)
		if tampered == artifact {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodeModel(strings.NewReader(tampered)); !errors.Is(err, ErrModelCorrupt) {
			t.Fatalf("got %v, want ErrModelCorrupt", err)
		}
	})
	t.Run("forged fingerprint", func(t *testing.T) {
		tampered := strings.Replace(artifact, m.Fingerprint, strings.Repeat("0", len(m.Fingerprint)), 1)
		if tampered == artifact {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodeModel(strings.NewReader(tampered)); !errors.Is(err, ErrModelCorrupt) {
			t.Fatalf("got %v, want ErrModelCorrupt", err)
		}
	})
}

// TestModelValidateRejectsInconsistency: a structurally broken model
// (consistent fingerprint, wrong shapes) is rejected by FromModel.
func TestModelValidateRejectsInconsistency(t *testing.T) {
	_, m, _ := snapshotFixture(t)
	m.Mean = m.Mean[:len(m.Mean)-1]
	if _, err := FromModel(m); !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("got %v, want ErrModelCorrupt", err)
	}
}
