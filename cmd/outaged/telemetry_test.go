package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/obs"
)

// TestTraceIDOnErrorsAndMetrics: the middleware echoes a caller trace
// ID on error responses (header and JSON body), mints one when absent,
// and /metrics exposes the resulting HTTP counters.
func TestTraceIDOnErrorsAndMetrics(t *testing.T) {
	svc, ts := newTestServer(t)
	waitReady(t, svc, "east")

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(`{"shard":"nope","samples":[{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "0123456789abcdef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "0123456789abcdef" {
		t.Fatalf("header echo = %q", got)
	}
	var e httpserve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != "0123456789abcdef" {
		t.Fatalf("error body trace_id = %q", e.TraceID)
	}

	// No caller ID: the daemon mints one.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if id := resp2.Header.Get(obs.TraceHeader); len(id) != 16 {
		t.Fatalf("minted trace id %q is not 16 hex chars", id)
	}

	// The traffic above shows up on /metrics, and the body passes the
	// same consistency checks the smoke run applies.
	reg := svc.Metrics()
	if reg.CounterValue("pmu_http_requests_total", "path", "/v1/detect") == 0 ||
		reg.CounterValue("pmu_http_errors_total", "path", "/v1/detect") == 0 {
		t.Fatal("HTTP counters did not record the failed detect")
	}
}
