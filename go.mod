module pmuoutage

go 1.22
