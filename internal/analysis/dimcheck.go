package analysis

import (
	"go/ast"
	"go/types"
)

// DimCheck guards the numeric core against silent out-of-range panics:
// inside the subspace, mlr, and ellipse packages (SVD subspaces Eq. 2,
// MVEE ellipses Eq. 4, proximity decoding Eq. 9–11), an index into a
// matrix-shaped value ([][]T) with a non-constant index must be
// dimension-guarded in the same function — either a len(...) mention of
// that value or a range over it. Those packages receive externally
// shaped data (detection groups, masks, training windows) where a
// dimension mismatch is a data bug, not a programming invariant.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "flag unguarded indexing into matrix values in subspace/mlr/ellipse",
	Run:  runDimCheck,
}

// dimCheckPackages are the package names the analyzer applies to.
var dimCheckPackages = map[string]bool{
	"subspace": true,
	"mlr":      true,
	"ellipse":  true,
}

func runDimCheck(pass *Pass) error {
	if !dimCheckPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkDims(pass, n.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkDims inspects one function body (function literals inherit the
// guards of their enclosing function — a closure over a checked matrix
// is still checked).
func checkDims(pass *Pass, body *ast.BlockStmt) {
	guarded := map[string]bool{}
	// Pass 1: collect guards — len(E) mentions and range-over-E.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					guarded[types.ExprString(n.Args[0])] = true
				}
			}
		case *ast.RangeStmt:
			guarded[types.ExprString(n.X)] = true
		}
		return true
	})
	// Pass 2: flag unguarded non-constant indexing into [][]T values.
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if !isMatrix(pass.Info.TypeOf(ix.X)) || isConstExpr(pass, ix.Index) {
			return true
		}
		expr := types.ExprString(ix.X)
		if !guarded[expr] {
			pass.Report(ix.Pos(), "index into matrix %s without a len() guard or range over it in this function; dimension mismatches must fail loudly, not panic", expr)
		}
		return true
	})
}

// isMatrix reports whether t is a slice of slices (matrix-shaped).
func isMatrix(t types.Type) bool {
	if t == nil {
		return false
	}
	outer, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = outer.Elem().Underlying().(*types.Slice)
	return ok
}
