package service

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pmuoutage"
)

// TestApplyPatchHotSwap is the incremental-update acceptance test: a
// rank-one patch trained against the serving model swaps the shard
// onto the patched model through the reload path in well under a
// second, the shard then answers exactly as a system built from the
// patched artifact does, and the patched model is pinned for
// supervisor rebuilds. Re-applying the same patch is refused with
// ErrPatchBase — the shard no longer serves the pinned base.
func TestApplyPatchHotSwap(t *testing.T) {
	base, err := pmuoutage.TrainModel(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(3), Model: base}},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	baseSys, err := pmuoutage.NewSystemFromModel(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := baseSys.ValidLines()[:2]
	p, err := pmuoutage.TrainModelPatch(base, pmuoutage.PatchSpec{Lines: lines, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := svc.ApplyPatch(context.Background(), "east", p); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("patch apply + hot swap took %v, must be under 1s", elapsed)
	}
	if st := svc.Shards()[0]; st.Model != p.ResultFingerprint() {
		t.Fatalf("shard serves %s after patch, want %s", st.Model, p.ResultFingerprint())
	}

	patched, err := p.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pmuoutage.NewSystemFromModel(patched)
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, ref, 3)
	want, err := ref.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.DetectBatch(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("patched shard detects differently from the patched artifact")
	}

	if err := svc.ApplyPatch(context.Background(), "east", p); !errors.Is(err, pmuoutage.ErrPatchBase) {
		t.Fatalf("re-apply onto patched model: got %v, want ErrPatchBase", err)
	}

	// A kill + rebuild must come back serving the patched artifact.
	if err := svc.Kill("east"); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, "east", "ready")
	if st := svc.Shards()[0]; st.Model != p.ResultFingerprint() {
		t.Fatalf("rebuilt shard serves %s, want pinned patched model %s", st.Model, p.ResultFingerprint())
	}
}
