package pmuoutage

import (
	"context"
	"errors"
	"fmt"
	"io"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
)

// Patch is an incremental model update: the sealed delta produced by
// re-simulating and re-learning a handful of lines against a frozen
// base model. A patch carries only the refreshed signature subspaces,
// the capability rows they invalidate, and the rebuilt detection
// groups, so producing and applying one scales with the lines touched
// rather than the grid — on a 300-bus system a two-line patch is a few
// kilobytes against a multi-megabyte model. Both ends are fingerprint-
// pinned: Apply refuses any base but the one the patch was trained on,
// and verifies the result hashes to the fingerprint the trainer sealed
// in, so a patched model is indistinguishable from a full retrain on
// the same data.
type Patch struct {
	dp *detect.Patch
}

// PatchSpec configures TrainModelPatch.
type PatchSpec struct {
	// Lines are the line indices whose outage signatures to refresh.
	// Every entry must be a valid (learnable) line of the base model.
	Lines []int
	// Seed drives the fresh outage simulations. Using the base model's
	// training seed reproduces the original data; any other value
	// simulates new observations of the same outage cases.
	Seed int64
	// Steps is the number of samples simulated per refreshed line;
	// 0 uses the base model's TrainSteps.
	Steps int
}

// TrainModelPatch simulates fresh outage data for the given lines and
// learns an incremental patch against the base model. It is
// TrainModelPatchContext with a background context.
func TrainModelPatch(base *Model, spec PatchSpec) (*Patch, error) {
	return TrainModelPatchContext(context.Background(), base, spec)
}

// TrainModelPatchContext re-runs the data pipeline only where the
// patch needs it: the base normal-operation set is regenerated from
// the model's own options (deterministic in the training seed), and
// one fresh outage scenario is simulated per refreshed line under
// spec.Seed. The per-line subspace learning — the expensive part of
// training — runs only for spec.Lines.
func TrainModelPatchContext(ctx context.Context, base *Model, spec PatchSpec) (*Patch, error) {
	if base == nil || base.dm == nil {
		return nil, fmt.Errorf("%w: nil base model", ErrBadModel)
	}
	if len(spec.Lines) == 0 {
		return nil, fmt.Errorf("%w: patch refreshes no lines", ErrBadPatch)
	}
	g := base.dm.Grid
	opts := base.opts
	gen := dataset.GenConfig{
		Steps: opts.TrainSteps, Seed: opts.Seed, UseDC: opts.UseDC, Workers: opts.Workers,
	}
	normal, err := dataset.GenerateScenarioContext(ctx, g, nil, gen)
	if err != nil {
		return nil, fmt.Errorf("%w: regenerating the normal set: %v", ErrBadPatch, err)
	}
	fresh := gen
	fresh.Seed = spec.Seed
	if spec.Steps > 0 {
		fresh.Steps = spec.Steps
	}
	refreshed := map[grid.Line]*dataset.Set{}
	for _, l := range spec.Lines {
		if l < 0 || l >= g.E() {
			return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrBadLine, l, g.E())
		}
		set, err := dataset.GenerateScenarioContext(ctx, g, dataset.Scenario{grid.Line(l)}, fresh)
		if err != nil {
			return nil, fmt.Errorf("%w: simulating line %d: %v", ErrBadPatch, l, err)
		}
		refreshed[grid.Line(l)] = set
	}
	dp, err := detect.TrainPatch(ctx, base.dm, normal, refreshed)
	if err != nil {
		return nil, wrapPatchErr(err)
	}
	return &Patch{dp: dp}, nil
}

// Apply produces the patched model. The base is not mutated; the two
// models share their untouched payload (both are immutable). A base
// other than the one the patch was trained on fails with
// ErrPatchBase; a patch whose splice does not hash to its sealed
// result fingerprint fails with ErrBadPatch.
func (p *Patch) Apply(base *Model) (*Model, error) {
	if p == nil || p.dp == nil {
		return nil, fmt.Errorf("%w: nil patch", ErrBadPatch)
	}
	if base == nil || base.dm == nil {
		return nil, fmt.Errorf("%w: nil base model", ErrBadModel)
	}
	dm, err := p.dp.Apply(base.dm)
	if err != nil {
		return nil, wrapPatchErr(err)
	}
	// The patch never touches the embedded facade metadata, so the
	// patched model serves under the base options.
	return &Model{opts: base.opts, dm: dm}, nil
}

// Encode writes the patch artifact to w as a single canonical JSON
// document, deterministic like the model codec.
func (p *Patch) Encode(w io.Writer) error {
	if p == nil || p.dp == nil {
		return fmt.Errorf("%w: nil patch", ErrBadPatch)
	}
	if err := p.dp.Encode(w); err != nil {
		return wrapPatchErr(err)
	}
	return nil
}

// DecodePatch reads an artifact written by Encode, verifying format
// version (ErrPatchVersion) and content fingerprint (ErrBadPatch).
func DecodePatch(r io.Reader) (*Patch, error) {
	dp, err := detect.DecodePatch(r)
	if err != nil {
		return nil, wrapPatchErr(err)
	}
	return &Patch{dp: dp}, nil
}

// Fingerprint returns the patch's own content fingerprint.
func (p *Patch) Fingerprint() string { return p.dp.Fingerprint }

// BaseFingerprint returns the fingerprint of the only model the patch
// applies to.
func (p *Patch) BaseFingerprint() string { return p.dp.BaseFingerprint }

// ResultFingerprint returns the fingerprint the patched model will
// carry.
func (p *Patch) ResultFingerprint() string { return p.dp.ResultFingerprint }

// Lines returns the refreshed line indices.
func (p *Patch) Lines() []int {
	out := make([]int, len(p.dp.Lines))
	for i, e := range p.dp.Lines {
		out[i] = int(e)
	}
	return out
}

// wrapPatchErr maps detect-layer patch errors onto the facade
// sentinels.
func wrapPatchErr(err error) error {
	switch {
	case errors.Is(err, detect.ErrPatchVersion):
		return fmt.Errorf("%w: %v", ErrPatchVersion, err)
	case errors.Is(err, detect.ErrPatchBase):
		return fmt.Errorf("%w: %v", ErrPatchBase, err)
	case errors.Is(err, detect.ErrModelVersion):
		return fmt.Errorf("%w: %v", ErrModelVersion, err)
	case errors.Is(err, detect.ErrModelCorrupt):
		return fmt.Errorf("%w: %v", ErrBadModel, err)
	default:
		return fmt.Errorf("%w: %v", ErrBadPatch, err)
	}
}
