package obs

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmuoutage/api"
)

func TestTraceParentRoundTrip(t *testing.T) {
	id := NewTraceID()
	const parent = uint64(0xdeadbeef01020304)
	h := FormatTraceParent(id, parent)
	if len(h) != 39 {
		t.Fatalf("header length %d, want 39: %q", len(h), h)
	}
	if h != "00-"+id+"-deadbeef01020304-01" {
		t.Fatalf("header %q, want the documented 00-<trace>-<span>-01 layout", h)
	}
	gotID, gotParent, ok := ParseTraceParent(h)
	if !ok || gotID != id || gotParent != parent {
		t.Fatalf("round trip: got (%q, %x, %v), want (%q, %x, true)", gotID, gotParent, ok, id, parent)
	}

	for _, bad := range []string{
		"",
		"00-short-00-01",
		"01-aaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01", // wrong version
		"00-AAAAAAAAAAAAAAAA-bbbbbbbbbbbbbbbb-01", // uppercase hex
		"00-aaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbg-01", // non-hex span
		"00-aaaaaaaaaaaaaaaa bbbbbbbbbbbbbbbb-01", // missing dash
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted malformed header", bad)
		}
	}
}

func TestParentSpanIDPrecedence(t *testing.T) {
	ctx := context.Background()
	if got := ParentSpanID(ctx); got != 0 {
		t.Fatalf("empty ctx parent = %x, want 0", got)
	}
	ctx = WithRemoteParent(ctx, 42)
	if got := ParentSpanID(ctx); got != 42 {
		t.Fatalf("remote parent = %x, want 42", got)
	}
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	ctx, sp := tr.StartSpan(ctx, "root")
	if !sp.root {
		t.Fatal("first local span should be root even with a remote parent")
	}
	if sp.parent != 42 {
		t.Fatalf("root parent = %x, want remote 42", sp.parent)
	}
	// An active local span wins over the remote parent.
	if got := ParentSpanID(ctx); got != sp.id {
		t.Fatalf("ctx parent = %x, want active span %x", got, sp.id)
	}
}

// drive runs one trace through tr: a root span with one child via
// StartSpan and one child via RecordSpan, returning the trace ID.
func drive(tr *Tracer, rootDur time.Duration, spanErr error) string {
	ctx, root := tr.StartSpan(context.Background(), "http")
	cctx, child := tr.StartSpan(ctx, "proxy")
	child.SetAttr("backend", "http://b1")
	child.SetError(spanErr)
	child.End()
	now := time.Now()
	tr.RecordSpan(cctx, "detect", now.Add(-time.Millisecond), now, nil)
	if rootDur > 0 {
		root.start = root.start.Add(-rootDur) // age the root instead of sleeping
	}
	id := TraceID(ctx)
	root.End()
	return id
}

func TestTailSamplingKeepRules(t *testing.T) {
	// Slow rule: a root over threshold is kept, a fast one dropped.
	tr := NewTracer(TracerConfig{SlowThreshold: 50 * time.Millisecond})
	fast := drive(tr, 0, nil)
	slow := drive(tr, 80*time.Millisecond, nil)
	if _, ok := tr.TraceByID(fast); ok {
		t.Fatal("fast, clean trace should be dropped")
	}
	got, ok := tr.TraceByID(slow)
	if !ok {
		t.Fatal("slow trace should be kept")
	}
	if got.Kept != api.TraceKeptSlow {
		t.Fatalf("kept reason = %q, want %q", got.Kept, api.TraceKeptSlow)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got.Spans))
	}

	// Error rule beats everything.
	errID := drive(tr, 80*time.Millisecond, errors.New("boom"))
	got, ok = tr.TraceByID(errID)
	if !ok || got.Kept != api.TraceKeptError {
		t.Fatalf("erroneous trace: kept=%v reason=%q, want error", ok, got.Kept)
	}

	// Random sampling keeps fast, clean traces at the configured rate.
	sampled := NewTracer(TracerConfig{SlowThreshold: -1, SampleEvery: 2})
	var kept int
	for i := 0; i < 10; i++ {
		id := drive(sampled, 0, nil)
		if _, ok := sampled.TraceByID(id); ok {
			kept++
		}
	}
	if kept != 5 {
		t.Fatalf("SampleEvery=2 kept %d of 10, want 5", kept)
	}
	if sampled.KeptCounter().Load() != 5 || sampled.DroppedCounter().Load() != 5 {
		t.Fatalf("counters kept=%d dropped=%d, want 5/5",
			sampled.KeptCounter().Load(), sampled.DroppedCounter().Load())
	}

	// Nothing left pending once roots end.
	if n := tr.PendingLen(); n != 0 {
		t.Fatalf("pending table leaked %d traces", n)
	}
}

func TestTraceStructure(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	id := drive(tr, 0, nil)
	got, ok := tr.TraceByID(id)
	if !ok {
		t.Fatal("SampleEvery=1 must keep every trace")
	}
	if got.TraceID != id {
		t.Fatalf("trace id %q, want %q", got.TraceID, id)
	}
	byStage := map[string]api.TraceSpan{}
	for _, s := range got.Spans {
		byStage[s.Stage] = s
	}
	root := byStage["http"]
	if !root.Root {
		t.Fatal("http span should be marked root")
	}
	proxy := byStage["proxy"]
	if proxy.Parent != root.ID {
		t.Fatalf("proxy parent = %q, want root %q", proxy.Parent, root.ID)
	}
	if proxy.Attrs["backend"] != "http://b1" {
		t.Fatalf("proxy attrs = %v", proxy.Attrs)
	}
	detect := byStage["detect"]
	if detect.Parent != proxy.ID {
		t.Fatalf("detect parent = %q, want proxy %q (RecordSpan under the proxy ctx)", detect.Parent, proxy.ID)
	}
	if detect.DurationNS <= 0 || got.DurationNS <= 0 {
		t.Fatalf("durations must be positive: span=%d trace=%d", detect.DurationNS, got.DurationNS)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 3, SampleEvery: 1})
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, drive(tr, 0, nil))
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(traces))
	}
	// Newest first, oldest evicted.
	if traces[0].TraceID != ids[4] || traces[2].TraceID != ids[2] {
		t.Fatalf("ring order wrong: got %q..%q, want %q..%q",
			traces[0].TraceID, traces[2].TraceID, ids[4], ids[2])
	}
	if _, ok := tr.TraceByID(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
}

func TestSpanCapAndPendingBound(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 2, SampleEvery: 1})
	ctx, root := tr.StartSpan(context.Background(), "http")
	for i := 0; i < 4; i++ {
		now := time.Now()
		tr.RecordSpan(ctx, "detect", now, now, nil)
	}
	id := TraceID(ctx)
	root.End()
	got, ok := tr.TraceByID(id)
	if !ok {
		t.Fatal("trace should be kept")
	}
	if len(got.Spans) != 2 || got.DroppedSpans != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2 retained, 3 dropped", len(got.Spans), got.DroppedSpans)
	}

	// Pending bound: span floods for absent roots are shed, but a root
	// arriving while the table is full still finalizes.
	small := NewTracer(TracerConfig{MaxPending: 1, SampleEvery: 1})
	orphanCtx := WithTraceID(context.Background(), NewTraceID())
	now := time.Now()
	small.RecordSpan(orphanCtx, "detect", now, now, nil) // root never arrives: occupies the slot
	ctx2 := WithTraceID(context.Background(), NewTraceID())
	small.RecordSpan(ctx2, "detect", now, now, nil) // shed: table full
	_, lateRoot := small.StartSpan(ctx2, "http")
	lateRoot.End()
	got, ok = small.TraceByID(TraceID(ctx2))
	if !ok {
		t.Fatal("root arriving over a full pending table must still finalize")
	}
	if len(got.Spans) != 1 {
		t.Fatalf("late root retained %d spans, want just itself (child was shed)", len(got.Spans))
	}
	if small.PendingLen() != 1 {
		t.Fatalf("pending = %d, want the original orphan only", small.PendingLen())
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1})
	ctx, root := tr.StartSpan(context.Background(), "http")
	id := TraceID(ctx)
	root.End()
	root.End()
	got, ok := tr.TraceByID(id)
	if !ok || len(got.Spans) != 1 {
		t.Fatalf("double End produced kept=%v spans=%d, want one span once", ok, len(got.Spans))
	}
}
