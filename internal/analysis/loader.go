package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	// TestFiles are the package's _test.go files (in-package and
	// external), parsed with comments but not type-checked — enough for
	// analyzers that cross-check test-side pins (allocfree).
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	loader *Loader // for cross-package AST lookups (Pass.PkgAST)
}

// Loader parses and type-checks packages from source with no external
// dependencies: module-internal imports resolve below the module root,
// everything else resolves into GOROOT/src. Cgo is disabled so the
// pure-Go variants of stdlib packages are selected, which keeps the
// whole dependency closure type-checkable from source.
type Loader struct {
	Fset    *token.FileSet
	ctx     build.Context
	modPath string
	modRoot string
	pkgs    map[string]*types.Package // canonical import path -> checked package
	loading map[string]bool           // import cycle guard
	asts    map[string][]*ast.File    // module-internal path -> comment-bearing ASTs
}

// NewLoader creates a loader rooted at the module directory containing
// go.mod. The module path is read from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ctx:     ctx,
		modPath: modPath,
		modRoot: abs,
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
		asts:    map[string][]*ast.File{},
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadDir parses and type-checks the (non-test) package rooted at dir,
// with comments attached so ignore directives survive. dir may be
// relative to the working directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files, err := l.parseFiles(abs, bp.GoFiles, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	testNames := append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...)
	testFiles, err := l.parseFiles(abs, testNames, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs, bp)
	info := newInfo()
	pkg, err := l.check(path, abs, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Dir: abs, Path: path, Fset: l.Fset, Files: files, TestFiles: testFiles, Pkg: pkg, Info: info, loader: l}, nil
}

// PkgAST returns the parsed, comment-bearing (non-test) files of a
// module-internal package by import path. Results are cached; any
// failure (not module-internal, unparseable) returns nil — annotation
// lookups degrade to "no annotations" rather than aborting analysis.
func (l *Loader) PkgAST(path string) []*ast.File {
	if files, ok := l.asts[path]; ok {
		return files
	}
	var files []*ast.File
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		if bp, err := l.ctx.ImportDir(dir, 0); err == nil {
			if parsed, err := l.parseFiles(dir, bp.GoFiles, parser.ParseComments); err == nil {
				files = parsed
			}
		}
	}
	l.asts[path] = files
	return files
}

// importPathFor derives the canonical import path of a directory: its
// module-relative path when below the module root, otherwise whatever
// go/build inferred.
func (l *Loader) importPathFor(abs string, bp *build.Package) string {
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return bp.ImportPath
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func (l *Loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks the given files as package path, resolving imports
// through the loader itself.
func (l *Loader) check(path, dir string, files []*ast.File, info *types.Info) (*types.Package, error) {
	cfg := types.Config{
		Importer: &importerFrom{l: l, dir: dir},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

// importerFrom adapts the loader to types.ImporterFrom, carrying the
// importing package's directory for vendor resolution inside GOROOT.
type importerFrom struct {
	l   *Loader
	dir string
}

func (im *importerFrom) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.dir, 0)
}

func (im *importerFrom) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return im.l.importPkg(path, srcDir)
}

// importPkg resolves and type-checks the package for an import path,
// caching by canonical path so shared dependencies check once.
func (l *Loader) importPkg(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	var dir, canon string
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		canon = path
	} else {
		bp, err := l.ctx.Import(path, srcDir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
		}
		dir, canon = bp.Dir, bp.ImportPath
	}
	if pkg, ok := l.pkgs[canon]; ok {
		return pkg, nil
	}
	if l.loading[canon] {
		return nil, fmt.Errorf("analysis: import cycle through %q", canon)
	}
	l.loading[canon] = true
	defer delete(l.loading, canon)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(canon, dir, files, newInfo())
	if err != nil {
		return nil, err
	}
	l.pkgs[canon] = pkg
	return pkg, nil
}
