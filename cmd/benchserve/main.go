// Command benchserve measures the serving path end to end: an
// in-process service behind the real HTTP handler on a loopback
// listener, driven open-loop at fixed request rates in both ingest
// modes (JSON bodies and binary wire frames). Each (qps, mode) tier
// reports exact sorted latency percentiles and the shed rate; an
// ingress section isolates the per-sample decode cost of the two
// transports, pinning the binary codec's zero-allocation decode and its
// speedup over encoding/json.
//
// Usage:
//
//	benchserve [-o BENCH_serve.json] [-qps 100,200,400] [-duration 2s] [-smoke]
//
// -smoke runs one abbreviated tier and skips the output file — a fast
// CI gate that the harness still works.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/loadgen"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/service"
	"pmuoutage/internal/wire"
)

const (
	benchCase  = "ieee14"
	benchBuses = 14
	benchShard = "bench"
	// missCadence injects a missing bus on every third frame so both
	// transports exercise their missing-measurement paths under load.
	missCadence = 3
)

// row is one (qps, mode) tier of the open-loop run.
type row struct {
	QPS      int     `json:"qps"`
	Mode     string  `json:"mode"`
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// ingress is the transport-only comparison: decoding one sample off the
// wire, with no detector or HTTP time.
type ingress struct {
	JSONNsPerSample   int64   `json:"json_ns_per_sample"`
	BinaryNsPerSample int64   `json:"binary_ns_per_sample"`
	Speedup           float64 `json:"speedup"`
	DecodeAllocsPerOp float64 `json:"binary_decode_allocs_per_op"`
}

// traceRow is one tracing mode of the overhead comparison: the full
// binary-ingest handler path (decode, score, respond), driven serially
// in process so the two rows differ only by the tracer.
type traceRow struct {
	Tracing string `json:"tracing"` // "off" or "on"
	NsPerOp int64  `json:"ns_per_op"`
}

// tracingOverhead pins the cost of leaving span tracing on: the "on"
// row runs with tail sampling keeping every trace (the worst retention
// case), and its per-op time must stay within Bound times the "off"
// row.
type tracingOverhead struct {
	Rows  []traceRow `json:"rows"`
	Ratio float64    `json:"ratio"`
	Bound float64    `json:"bound"`
}

type report struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Case       string          `json:"case"`
	DurationMs int64           `json:"tier_duration_ms"`
	Rows       []row           `json:"rows"`
	Ingress    ingress         `json:"ingress"`
	Tracing    tracingOverhead `json:"tracing"`
}

// tracingBound is the pinned overhead budget: the traced binary ingest
// path must stay within this factor of the untraced one.
const tracingBound = 1.5

func main() {
	out := flag.String("o", "BENCH_serve.json", "output file")
	qps := flag.String("qps", "100,200,400", "comma-separated request rates")
	duration := flag.Duration("duration", 2*time.Second, "open-loop time per tier")
	smoke := flag.Bool("smoke", false, "one abbreviated tier, no output file")
	flag.Parse()

	tiers, err := parseQPS(*qps)
	if err == nil {
		err = run(*out, tiers, *duration, *smoke)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func parseQPS(list string) ([]int, error) {
	var tiers []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad qps tier %q", part)
		}
		tiers = append(tiers, n)
	}
	return tiers, nil
}

func run(out string, tiers []int, duration time.Duration, smoke bool) error {
	ingressIters := 20000
	if smoke {
		tiers = []int{40}
		duration = 150 * time.Millisecond
		ingressIters = 2000
	}

	m, err := pmuoutage.TrainModel(pmuoutage.Options{
		Case: benchCase, TrainSteps: 12, Seed: 1, UseDC: true,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return err
	}
	svc, err := service.New(context.Background(), service.Config{
		Shards:         []service.ShardSpec{{Name: benchShard, Model: m}},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	if err := waitReady(svc); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: httpserve.New(svc, 30*time.Second, nil).Routes()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		<-errc
	}()
	base := "http://" + ln.Addr().String()

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Case:       benchCase,
		DurationMs: duration.Milliseconds(),
	}
	if rep.Ingress, err = measureIngress(ingressIters); err != nil {
		return err
	}

	bins, jsons, err := pregenerate(512)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for _, qps := range tiers {
		for _, mode := range []string{"json", "binary"} {
			bodies := jsons
			if mode == "binary" {
				bodies = bins
			}
			r, err := runTier(client, base, mode, qps, duration, bodies)
			if err != nil {
				return fmt.Errorf("tier qps=%d mode=%s: %w", qps, mode, err)
			}
			rep.Rows = append(rep.Rows, r)
			fmt.Printf("qps=%-4d %-6s sent=%-5d ok=%-5d shed=%-4d p50=%.2fms p95=%.2fms p99=%.2fms\n",
				r.QPS, r.Mode, r.Sent, r.OK, r.Shed, r.P50Ms, r.P95Ms, r.P99Ms)
		}
	}

	fmt.Printf("ingress: json=%dns binary=%dns speedup=%.1fx decode_allocs=%.1f\n",
		rep.Ingress.JSONNsPerSample, rep.Ingress.BinaryNsPerSample,
		rep.Ingress.Speedup, rep.Ingress.DecodeAllocsPerOp)
	if rep.Ingress.Speedup < 2 {
		return fmt.Errorf("binary ingress only %.2fx faster than JSON, want >= 2x", rep.Ingress.Speedup)
	}
	if rep.Ingress.DecodeAllocsPerOp > 0 {
		return fmt.Errorf("binary decode allocates %.1f/op, want 0", rep.Ingress.DecodeAllocsPerOp)
	}

	traceIters := 4000
	if smoke {
		traceIters = 800
	}
	if rep.Tracing, err = measureTracing(m, bins[0], traceIters); err != nil {
		return err
	}
	fmt.Printf("tracing: off=%dns on=%dns ratio=%.2fx (bound %.1fx)\n",
		rep.Tracing.Rows[0].NsPerOp, rep.Tracing.Rows[1].NsPerOp,
		rep.Tracing.Ratio, rep.Tracing.Bound)
	if rep.Tracing.Ratio > rep.Tracing.Bound {
		return fmt.Errorf("tracing-on binary ingest is %.2fx the tracing-off path, bound %.1fx",
			rep.Tracing.Ratio, rep.Tracing.Bound)
	}
	if smoke {
		fmt.Println("benchserve: smoke ok")
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

func waitReady(svc *service.Service) error {
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := svc.System(benchShard); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard %s never became ready", benchShard)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pregenerate builds n request bodies in both transports from one
// deterministic frame source, so the open-loop sender never generates
// data on the hot path.
func pregenerate(n int) (bins, jsons [][]byte, err error) {
	fs, err := loadgen.NewFrameSource(benchBuses, 96, 1, missCadence)
	if err != nil {
		return nil, nil, err
	}
	defer fs.Close()
	for i := 0; i < n; i++ {
		enc, err := fs.Next()
		if err != nil {
			return nil, nil, err
		}
		bins = append(bins, append([]byte(nil), enc...))
		vm, va, missing := fs.Sample()
		body, err := json.Marshal(httpserve.IngestRequest{
			Shard: benchShard,
			Sample: pmuoutage.Sample{
				Vm:      append([]float64(nil), vm...),
				Va:      append([]float64(nil), va...),
				Missing: missing,
			},
		})
		if err != nil {
			return nil, nil, err
		}
		jsons = append(jsons, body)
	}
	return bins, jsons, nil
}

// runTier fires requests open-loop at a fixed rate: a late response
// never delays the next send, so queueing shows up as latency and shed,
// not as a lower offered rate.
func runTier(client *http.Client, base, mode string, qps int, duration time.Duration, bodies [][]byte) (row, error) {
	url := base + "/v1/ingest"
	contentType := "application/json"
	if mode == "binary" {
		url += "?shard=" + benchShard
		contentType = httpserve.FrameContentType
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		ok, shed  int
		firstErr  error
	)
	var wg sync.WaitGroup
	interval := time.Second / time.Duration(qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	start := time.Now()
	sent := 0
	for time.Since(start) < duration {
		<-ticker.C
		body := bodies[sent%len(bodies)]
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(url, contentType, strings.NewReader(string(body)))
			el := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			_ = resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
				latencies = append(latencies, el)
			case http.StatusTooManyRequests:
				shed++
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return row{}, firstErr
	}
	if len(latencies) == 0 {
		return row{}, fmt.Errorf("no successful requests")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	r := row{
		QPS: qps, Mode: mode, Sent: sent, OK: ok, Shed: shed,
		ShedRate: float64(shed) / float64(sent),
		P50Ms:    percentileMs(latencies, 0.50),
		P95Ms:    percentileMs(latencies, 0.95),
		P99Ms:    percentileMs(latencies, 0.99),
	}
	return r, nil
}

// percentileMs is the exact nearest-rank percentile of sorted samples.
func percentileMs(sorted []time.Duration, p float64) float64 {
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// measureIngress times one sample's decode in each transport — JSON
// unmarshal of an IngestRequest vs wire.DecodeFrame into a warm frame —
// and pins the binary path's allocation count.
func measureIngress(iters int) (ingress, error) {
	fs, err := loadgen.NewFrameSource(benchBuses, 96, 2, missCadence)
	if err != nil {
		return ingress{}, err
	}
	defer fs.Close()
	enc, err := fs.Next()
	if err != nil {
		return ingress{}, err
	}
	enc = append([]byte(nil), enc...)
	vm, va, missing := fs.Sample()
	body, err := json.Marshal(httpserve.IngestRequest{
		Shard:  benchShard,
		Sample: pmuoutage.Sample{Vm: vm, Va: va, Missing: missing},
	})
	if err != nil {
		return ingress{}, err
	}

	f := wire.GetFrame()
	defer wire.PutFrame(f)
	if _, err := wire.DecodeFrame(enc, f); err != nil {
		return ingress{}, err
	}

	const reps = 3
	var ing ingress
	ing.BinaryNsPerSample = bestNs(reps, iters, func() error {
		_, err := wire.DecodeFrame(enc, f)
		return err
	})
	ing.JSONNsPerSample = bestNs(reps, iters, func() error {
		var req httpserve.IngestRequest
		return json.Unmarshal(body, &req)
	})
	if ing.BinaryNsPerSample > 0 {
		ing.Speedup = float64(ing.JSONNsPerSample) / float64(ing.BinaryNsPerSample)
	}
	ing.DecodeAllocsPerOp = testing.AllocsPerRun(1000, func() {
		if _, err := wire.DecodeFrame(enc, f); err != nil {
			panic(err)
		}
	})
	return ing, nil
}

// measureTracing times the full binary-ingest handler path — decode,
// synchronous score, response — with tracing disabled vs a tracer that
// retains every trace (the worst retention case), using in-process
// handler dispatch so the two rows differ only by the tracer.
func measureTracing(m *pmuoutage.Model, enc []byte, iters int) (tracingOverhead, error) {
	const reps = 3
	run := func(tr *obs.Tracer) (int64, error) {
		svc, err := service.New(context.Background(), service.Config{
			Shards:         []service.ShardSpec{{Name: benchShard, Model: m}},
			RestartBackoff: time.Millisecond,
			Tracer:         tr,
		})
		if err != nil {
			return 0, err
		}
		defer svc.Close()
		if err := waitReady(svc); err != nil {
			return 0, err
		}
		h := httpserve.New(svc, 30*time.Second, nil).Routes()
		post := func() error {
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest?shard="+benchShard, bytes.NewReader(enc))
			req.Header.Set("Content-Type", httpserve.FrameContentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("ingest status %d: %s", rec.Code, rec.Body.String())
			}
			return nil
		}
		// Warm the shard and the frame/buffer pools before timing.
		for i := 0; i < 50; i++ {
			if err := post(); err != nil {
				return 0, err
			}
		}
		return bestNs(reps, iters, post), nil
	}

	var to tracingOverhead
	off, err := run(nil)
	if err != nil {
		return to, err
	}
	on, err := run(obs.NewTracer(obs.TracerConfig{Capacity: 256, SampleEvery: 1}))
	if err != nil {
		return to, err
	}
	to.Rows = []traceRow{{Tracing: "off", NsPerOp: off}, {Tracing: "on", NsPerOp: on}}
	to.Bound = tracingBound
	if off > 0 {
		to.Ratio = float64(on) / float64(off)
	}
	return to, nil
}

// bestNs reports the fastest per-op time over reps runs of iters calls.
func bestNs(reps, iters int, fn func() error) int64 {
	best := int64(-1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				panic(err)
			}
		}
		if ns := time.Since(start).Nanoseconds() / int64(iters); best < 0 || ns < best {
			best = ns
		}
	}
	return best
}
