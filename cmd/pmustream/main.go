// Command pmustream runs the whole online story end to end on one
// machine: a simulated PMU fleet streams phasor frames over real TCP
// connections to per-cluster PDCs, the PDCs relay aggregates to the
// control-center collector, and a stream monitor watches the assembled
// samples for outages. Midway through the run a line outage occurs and
// (optionally) kills the PMUs at its endpoints; the monitor should
// still confirm and localise the event.
//
// Usage:
//
//	pmustream [-case ieee14] [-line N] [-steps 30] [-outage-at 10] [-kill-pmus] [-loss 0.02]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/comm"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/stream"
)

func main() {
	caseName := flag.String("case", "ieee14", "test system")
	lineIdx := flag.Int("line", -1, "line to outage (-1 = first valid line)")
	steps := flag.Int("steps", 30, "total stream length in samples")
	outageAt := flag.Int("outage-at", 10, "sample index at which the outage occurs")
	killPMUs := flag.Bool("kill-pmus", true, "outage also takes down the endpoint PMUs")
	loss := flag.Float64("loss", 0.02, "per-frame PMU link loss probability")
	seed := flag.Int64("seed", 1, "random seed")
	logLevel := flag.String("log-level", "warn", "network-event log verbosity (debug logs every incomplete assembly)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmustream:", err)
		os.Exit(1)
	}
	if err := run(*caseName, *lineIdx, *steps, *outageAt, *killPMUs, *loss, *seed, level); err != nil {
		fmt.Fprintln(os.Stderr, "pmustream:", err)
		os.Exit(1)
	}
}

func run(caseName string, lineIdx, steps, outageAt int, killPMUs bool, loss float64, seed int64, level slog.Level) error {
	g, err := cases.Load(caseName)
	if err != nil {
		return err
	}
	nclusters := g.N() / 10
	if nclusters < 3 {
		nclusters = 3
	}
	nw, err := pmunet.Build(g, nclusters)
	if err != nil {
		return err
	}

	fmt.Printf("training detector on %s...\n", g.Name)
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 40, Seed: seed})
	if err != nil {
		return err
	}
	det, err := detect.Train(train, nw, detect.Config{})
	if err != nil {
		return err
	}
	if lineIdx < 0 {
		lineIdx = int(det.ValidLines()[0])
	}
	target := grid.Line(lineIdx)
	a, b := g.Endpoints(target)

	// Pre-generate the truth streams (normal, then post-outage).
	normal, err := dataset.GenerateScenario(g, nil, dataset.GenConfig{Steps: steps, Seed: seed + 5})
	if err != nil {
		return err
	}
	outage, err := dataset.GenerateScenario(g, dataset.Scenario{target}, dataset.GenConfig{Steps: steps, Seed: seed + 6})
	if err != nil {
		return err
	}

	// Stand up the measurement network on loopback.
	col, err := comm.NewCollector(g.N(), "127.0.0.1:0", 60*time.Millisecond)
	if err != nil {
		return err
	}
	defer col.Close()
	col.SetLogger(obs.NewTextLogger(os.Stderr, level))
	pmus := make([]*comm.PMU, g.N())
	var pdcs []*comm.PDC
	for ci, members := range nw.Clusters {
		pdc, err := comm.NewPDC(ci, "127.0.0.1:0", col.Addr(), 15*time.Millisecond)
		if err != nil {
			return err
		}
		pdcs = append(pdcs, pdc)
		for _, bus := range members {
			pmu, err := comm.NewPMU(bus, pdc.Addr(), loss, seed+int64(bus))
			if err != nil {
				return err
			}
			pmus[bus] = pmu
		}
	}
	defer func() {
		// Best-effort teardown: the demo is over, sockets may already be
		// closed by the publisher goroutine (Close is idempotent).
		for _, p := range pmus {
			_ = p.Close()
		}
		for _, p := range pdcs {
			_ = p.Close()
		}
	}()
	fmt.Printf("network up: %d PMUs, %d PDCs, collector at %s\n", g.N(), len(pdcs), col.Addr())
	fmt.Printf("outage of line %d (bus %d - bus %d) at sample %d, kill-pmus=%v\n\n",
		lineIdx, g.Buses[a].ID, g.Buses[b].ID, outageAt, killPMUs)

	mon, err := stream.NewMonitor(det, stream.Config{Confirm: 3, Cooldown: 20})
	if err != nil {
		return err
	}

	// Publisher: send each time step through the TCP fabric.
	go func() {
		for t := 0; t < steps; t++ {
			src := normal.Samples[t]
			if t >= outageAt {
				src = outage.Samples[t]
			}
			if t == outageAt && killPMUs {
				pmus[a].SetDown(true)
				pmus[b].SetDown(true)
			}
			for bus, pmu := range pmus {
				// Dead PMUs drop internally; errors mean torn sockets.
				_ = pmu.Send(t, src.Vm[bus], src.Va[bus])
			}
			time.Sleep(25 * time.Millisecond)
		}
		// Give the fabric a moment to drain, then flush.
		time.Sleep(150 * time.Millisecond)
		for _, p := range pdcs {
			_ = p.Close() // flushes; write errors just mean the demo is done
		}
		col.Flush()
		_ = col.Close() // closes the Samples channel, ending the consumer loop
	}()

	// Consumer: feed assembled samples to the monitor.
	got := 0
	for asm := range col.Samples() {
		got++
		ev, err := mon.Ingest(asm.Sample)
		if err != nil {
			return err
		}
		status := "normal"
		if asm.Sample.Mask != nil && asm.Sample.Mask.AnyMissing() {
			status = fmt.Sprintf("missing %d PMUs", asm.Sample.Mask.MissingCount())
		}
		if ev != nil {
			fmt.Printf("sample %3d [%s]: *** OUTAGE CONFIRMED (latency %d samples) lines=%v\n",
				asm.Seq, status, ev.Latency(), describe(g, ev.Lines))
		} else if asm.Seq%5 == 0 {
			fmt.Printf("sample %3d [%s]: ok\n", asm.Seq, status)
		}
	}
	st := col.Stats()
	fmt.Printf("\nstream finished: %d samples assembled and scored\n", got)
	fmt.Printf("collector: emitted=%d incomplete=%d dropped=%d evicted=%d\n",
		st.Emitted, st.Incomplete, st.DroppedFull, st.Evicted)
	return nil
}

func describe(g *grid.Grid, lines []grid.Line) []string {
	out := make([]string, len(lines))
	for i, e := range lines {
		a, b := g.Endpoints(e)
		out[i] = fmt.Sprintf("%d(%d-%d)", e, g.Buses[a].ID, g.Buses[b].ID)
	}
	return out
}
