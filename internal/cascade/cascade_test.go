package cascade

import (
	"math"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/grid"
)

func TestDeriveRatings(t *testing.T) {
	g := cases.IEEE14()
	r, err := Derive(g, 1.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != g.E() {
		t.Fatalf("ratings = %d, want %d", len(r), g.E())
	}
	flows, err := Flows(g)
	if err != nil {
		t.Fatal(err)
	}
	for e := range r {
		if r[e] < math.Abs(flows[e]) {
			t.Fatalf("line %d rated below base flow", e)
		}
		if r[e] < 0.1 {
			t.Fatalf("line %d rating %v below floor", e, r[e])
		}
	}
	if _, err := Derive(g, 0.9, 0); err == nil {
		t.Fatal("expected margin validation error")
	}
}

func TestFlowsConservation(t *testing.T) {
	// DC flow balance: at every non-slack bus, net flow equals injection.
	g := cases.IEEE14()
	flows, err := Flows(g)
	if err != nil {
		t.Fatal(err)
	}
	slack, _ := g.SlackIndex()
	for i := 0; i < g.N(); i++ {
		if i == slack {
			continue
		}
		var net float64
		for e := range g.Branches {
			br := &g.Branches[e]
			switch i {
			case br.From:
				net -= flows[e]
			case br.To:
				net += flows[e]
			}
		}
		inj := g.Buses[i].Pg - g.Buses[i].Pd
		if math.Abs(net+inj) > 1e-9 {
			t.Fatalf("bus %d: flow imbalance %v vs injection %v", i, net, inj)
		}
	}
}

func TestNoCascadeWithGenerousRatings(t *testing.T) {
	// With a huge margin, a single outage must not propagate.
	g := cases.IEEE14()
	r, err := Derive(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, r, []grid.Line{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth() != 0 {
		t.Fatalf("cascade depth %d with 10x margins", res.Depth())
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed lines = %v, want only the trigger", res.Failed)
	}
	if res.ServedFraction < 0.999 {
		t.Fatalf("served fraction %v, want ~1", res.ServedFraction)
	}
}

func TestTightRatingsCascade(t *testing.T) {
	// With margins barely above base flow, tripping the most loaded line
	// must trigger further failures.
	g := cases.IEEE14()
	r, err := Derive(g, 1.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	flows, _ := Flows(g)
	worst := grid.Line(0)
	for e := 1; e < g.E(); e++ {
		if math.Abs(flows[e]) > math.Abs(flows[worst]) {
			worst = grid.Line(e)
		}
	}
	res, err := Run(g, r, []grid.Line{worst}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth() == 0 {
		t.Fatal("expected propagation with 5% margins")
	}
	if len(res.Failed) < 2 {
		t.Fatalf("failed = %v, want secondary trips", res.Failed)
	}
	if res.ServedFraction >= 1 {
		t.Fatalf("served fraction %v after cascade", res.ServedFraction)
	}
	// Monotone decreasing served fraction across steps.
	prev := 1.0
	for _, s := range res.Steps {
		if s.Served > prev+1e-12 {
			t.Fatalf("served fraction increased at round %d", s.Round)
		}
		prev = s.Served
	}
}

func TestInterventionHaltsCascade(t *testing.T) {
	g := cases.IEEE14()
	r, err := Derive(g, 1.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	flows, _ := Flows(g)
	worst := grid.Line(0)
	for e := 1; e < g.E(); e++ {
		if math.Abs(flows[e]) > math.Abs(flows[worst]) {
			worst = grid.Line(e)
		}
	}
	free, err := Run(g, r, []grid.Line{worst}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stopped, err := Run(g, r, []grid.Line{worst}, Options{
		Intervene: ShedLoad(0.3, r),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped.Halted {
		t.Fatal("30% load shedding should halt the cascade")
	}
	if len(stopped.Failed) > len(free.Failed) {
		t.Fatalf("intervention lost more lines (%d) than no action (%d)",
			len(stopped.Failed), len(free.Failed))
	}
}

func TestRunValidation(t *testing.T) {
	g := cases.IEEE14()
	r, _ := Derive(g, 2, 0.1)
	if _, err := Run(g, r, nil, Options{}); err != ErrNoTrigger {
		t.Fatalf("err = %v, want ErrNoTrigger", err)
	}
	if _, err := Run(g, r[:3], []grid.Line{0}, Options{}); err == nil {
		t.Fatal("expected ratings length error")
	}
	if _, err := Run(g, r, []grid.Line{999}, Options{}); err == nil {
		t.Fatal("expected trigger range error")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	g := cases.IEEE14()
	r, _ := Derive(g, 1.05, 0.01)
	before := g.Clone()
	if _, err := Run(g, r, []grid.Line{0}, Options{}); err != nil {
		t.Fatal(err)
	}
	for e := range g.Branches {
		if g.Branches[e] != before.Branches[e] {
			t.Fatal("Run mutated the input grid branches")
		}
	}
	for i := range g.Buses {
		if g.Buses[i] != before.Buses[i] {
			t.Fatal("Run mutated the input grid buses")
		}
	}
}

func TestIslandingShedsLoad(t *testing.T) {
	// Removing both feeders of the radial bus 8 region (lines 7-8) in
	// IEEE-14 islands bus 8; its (zero) load plus any generation must be
	// handled without error, and flows must stay computable.
	g := cases.IEEE14()
	r, _ := Derive(g, 5, 0.5)
	e := g.FindLine(6, 7) // the only line of bus 8 (0-based 7)
	if e < 0 {
		t.Fatal("line 7-8 not found")
	}
	res, err := Run(g, r, []grid.Line{e}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Bus 8 carries no load in IEEE-14, so served fraction stays ~1.
	if res.ServedFraction < 0.999 {
		t.Fatalf("served = %v, want ~1 (islanded bus has no load)", res.ServedFraction)
	}
}

func TestVulnerability(t *testing.T) {
	g := cases.IEEE14()
	tight, err := Derive(g, 1.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	vul, err := Vulnerability(g, tight, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vul) == 0 {
		t.Fatal("5% margins must leave some cascading triggers")
	}
	generous, _ := Derive(g, 10, 1)
	none, err := Vulnerability(g, generous, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("10x margins should have no cascading triggers, got %v", none)
	}
}

func TestOverloadMarginHelper(t *testing.T) {
	g := cases.IEEE14()
	r, _ := Derive(g, 2, 0.1)
	m, err := overloadMargin(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 || m > 0.51 {
		t.Fatalf("base-case worst margin = %v, want <= 1/2 with 2x ratings", m)
	}
}
