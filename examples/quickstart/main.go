// Quickstart: build a detection system on the IEEE 14-bus grid, simulate
// a line outage, and localise it from one PMU sample.
package main

import (
	"fmt"
	"log"

	"pmuoutage"
)

func main() {
	// NewSystem builds the grid, simulates a day of training data with
	// Ornstein-Uhlenbeck load variation and AC power flows, and trains
	// the subspace detector. Deterministic in Seed.
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 40,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %s: %d buses, %d lines (%d valid outage cases)\n",
		"ieee14", sys.Buses(), len(sys.Lines()), len(sys.ValidLines()))

	// Sanity check: a normal-operation sample raises no alarm.
	normal, err := sys.SimulateOutage(nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Detect(normal[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal sample: outage=%v (deviation energy %.2e)\n", rep.Outage, rep.DeviationEnergy)

	// Take the first valid line out of service and detect it.
	target := sys.ValidLines()[0]
	line := sys.Lines()[target]
	samples, err := sys.SimulateOutage([]int{target}, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err = sys.Detect(samples[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outage of line %d (bus %d - bus %d):\n", target, line.FromBus, line.ToBus)
	fmt.Printf("  detected outage: %v\n", rep.Outage)
	for _, l := range rep.Lines {
		fmt.Printf("  identified line %d (bus %d - bus %d)\n", l.Index, l.FromBus, l.ToBus)
	}

	// Aggregate accuracy over every valid line (Eq. 12 of the paper).
	ia, fa, err := sys.Evaluate(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all single-line outages: IA=%.3f FA=%.3f\n", ia, fa)
}
