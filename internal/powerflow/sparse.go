// Sparse power-flow path: the same Newton–Raphson (AC) and reduced
// B-matrix (DC) formulations as powerflow.go, restaged on CSR
// operators and iterative solves so cost scales with the number of
// branches instead of buses². Grids at or above SparseBusThreshold
// buses dispatch here automatically; smaller grids keep the historical
// dense path bit for bit.

package powerflow

import (
	"errors"
	"fmt"
	"math"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
)

// SparseBusThreshold is the bus count at which SolveAC and SolveDC
// switch from the dense kernels to the sparse operator path. Below it
// the dense path runs unchanged, so every grid the detector was tuned
// on (14–118 buses) produces byte-identical results to the pre-sparse
// code.
const SparseBusThreshold = 150

// Solver selects the linear-algebra backend for a solve.
type Solver int

const (
	// SolverAuto dispatches on grid size: dense below
	// SparseBusThreshold buses, sparse at or above it.
	SolverAuto Solver = iota
	// SolverDense forces the historical dense kernels (LU).
	SolverDense
	// SolverSparse forces the CSR + iterative path regardless of size.
	SolverSparse
)

func (s Solver) sparse(n int) bool {
	switch s {
	case SolverDense:
		return false
	case SolverSparse:
		return true
	default:
		return n >= SparseBusThreshold
	}
}

// ybusAdj is the CSR adjacency view of the bus admittance matrix:
// row i's neighbors are cols[rowPtr[i]:rowPtr[i+1]] with conductance
// gv and susceptance bv. It is scanned once from the grid's Ybus so
// the sparse path shares the dense path's single source of truth for
// taps, shifts, and shunts.
type ybusAdj struct {
	rowPtr []int
	cols   []int
	gv     []float64 //gridlint:unit pu // conductance entries (p.u.)
	bv     []float64 //gridlint:unit pu // susceptance entries (p.u.)
}

func newYbusAdj(g *grid.Grid) *ybusAdj {
	n := g.N()
	ybus := g.Ybus()
	a := &ybusAdj{rowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			y := ybus.At(i, j)
			if y == 0 { //gridlint:ignore floatcmp admittance entries are exactly zero off the graph
				continue
			}
			a.cols = append(a.cols, j)
			a.gv = append(a.gv, real(y))
			a.bv = append(a.bv, imag(y))
		}
		a.rowPtr[i+1] = len(a.cols)
	}
	return a
}

// normalEqOp is the matrix-free normal-equations operator JᵀJ used to
// solve the nonsymmetric Newton step J dx = f by CGNR: JᵀJ is SPD
// whenever J has full column rank, and each application is two sparse
// mat-vec passes. Its diagonal (column norms² of J) is the Jacobi
// preconditioner.
type normalEqOp struct {
	j   *mat.Sparse
	tmp []float64
	d   []float64
}

func newNormalEqOp(j *mat.Sparse) *normalEqOp {
	rows, cols := j.Dims()
	o := &normalEqOp{j: j, tmp: make([]float64, rows), d: make([]float64, cols)}
	j.VisitNonzero(func(_, c int, v float64) {
		o.d[c] += v * v
	})
	return o
}

func (o *normalEqOp) Dims() (int, int) {
	_, c := o.j.Dims()
	return c, c
}

func (o *normalEqOp) MulVecTo(dst, x []float64) {
	o.j.MulVecTo(o.tmp, x)
	o.j.MulVecTTo(dst, o.tmp)
}

func (o *normalEqOp) Diag() []float64 { return o.d }

// solveACSparse is SolveAC on the CSR path: identical state setup and
// mismatch definition (max |ΔP|, |ΔQ| in p.u.), but the iteration is
// fast-decoupled (XB scheme): the P–θ half-step solves the constant
// series-reactance Laplacian B′ and the Q–V half-step the constant
// −Im(Ybus) matrix B″, both SPD for inductive transmission grids and
// both solved by Jacobi-preconditioned CG on CSR operators. The
// matrices never change across iterations, so their preconditioners
// are built once, and every inner solve is O(nnz·iters) instead of
// the dense path's O(n³) LU. When decoupling fails (capacitive B″,
// CG breakdown, or no convergence), the full-Newton sparse path with
// CGNR inner solves takes over, and dense LU backs that.
func solveACSparse(g *grid.Grid, opts Options) (*Solution, error) {
	sol, err := solveACDecoupled(g, opts)
	if err == nil {
		return sol, nil
	}
	if errors.Is(err, errSlack) {
		return nil, err
	}
	return solveACSparseNewton(g, opts)
}

// errSlack tags slack-index failures so the decoupled→Newton fallback
// does not retry a structurally invalid grid.
var errSlack = errors.New("powerflow: invalid slack")

// acState is the shared state setup of both sparse AC iterations —
// identical to the dense solver's.
type acState struct {
	n          int
	adj        *ybusAdj
	pvpq, pq   []int
	posA, posM []int
	vm         []float64 //gridlint:unit pu // iterate voltage magnitudes
	va         []float64 //gridlint:unit rad // iterate voltage angles
	pSched     []float64 //gridlint:unit pu // scheduled P injections
	qSched     []float64 //gridlint:unit pu // scheduled Q injections
	pcalc      []float64 //gridlint:unit pu // calculated P injections
	qcalc      []float64 //gridlint:unit pu // calculated Q injections
}

func newACState(g *grid.Grid, opts Options) (*acState, error) {
	n := g.N()
	slack, err := g.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errSlack, err)
	}
	st := &acState{n: n, adj: newYbusAdj(g)}
	for i := 0; i < n; i++ {
		if i == slack {
			continue
		}
		if g.Buses[i].Type == PQint {
			st.pq = append(st.pq, i)
		}
		st.pvpq = append(st.pvpq, i)
	}
	st.vm = make([]float64, n)
	st.va = make([]float64, n)
	for i := 0; i < n; i++ {
		if opts.FlatStart {
			st.vm[i], st.va[i] = 1, 0
		} else {
			st.vm[i], st.va[i] = g.Buses[i].Vm, g.Buses[i].Va
			if st.vm[i] <= 0 {
				st.vm[i] = 1
			}
		}
		if g.Buses[i].Type != PQint {
			st.vm[i] = g.Buses[i].Vm
			if st.vm[i] <= 0 {
				st.vm[i] = 1
			}
		}
	}
	st.va[slack] = g.Buses[slack].Va

	st.pSched = make([]float64, n)
	st.qSched = make([]float64, n)
	for i := 0; i < n; i++ {
		st.pSched[i] = g.Buses[i].Pg - g.Buses[i].Pd
		st.qSched[i] = g.Buses[i].Qg - g.Buses[i].Qd
	}
	st.posA = make([]int, n)
	st.posM = make([]int, n)
	for i := range st.posA {
		st.posA[i], st.posM[i] = -1, -1
	}
	for k, i := range st.pvpq {
		st.posA[i] = k
	}
	nb := len(st.pvpq)
	for k, i := range st.pq {
		st.posM[i] = nb + k
	}
	st.pcalc = make([]float64, n)
	st.qcalc = make([]float64, n)
	return st, nil
}

// calc computes the AC power injections at the current iterate —
// adjacency-driven, O(nnz).
func (st *acState) calc() {
	for i := 0; i < st.n; i++ {
		var pi, qi float64
		for k := st.adj.rowPtr[i]; k < st.adj.rowPtr[i+1]; k++ {
			j := st.adj.cols[k]
			gv, bv := st.adj.gv[k], st.adj.bv[k]
			d := st.va[i] - st.va[j]
			c, s := math.Cos(d), math.Sin(d)
			pi += st.vm[j] * (gv*c + bv*s)
			qi += st.vm[j] * (gv*s - bv*c)
		}
		st.pcalc[i] = st.vm[i] * pi
		st.qcalc[i] = st.vm[i] * qi
	}
}

// mismatch fills f with the stacked P (pvpq) and Q (pq) mismatches and
// returns the max magnitude — the dense solver's convergence metric,
// unchanged.
func (st *acState) mismatch(f []float64) float64 {
	nb := len(st.pvpq)
	var mx float64
	for k, i := range st.pvpq {
		f[k] = st.pcalc[i] - st.pSched[i]
		if a := math.Abs(f[k]); a > mx {
			mx = a
		}
	}
	for k, i := range st.pq {
		f[nb+k] = st.qcalc[i] - st.qSched[i]
		if a := math.Abs(f[nb+k]); a > mx {
			mx = a
		}
	}
	return mx
}

// solveACDecoupled runs the XB fast-decoupled iteration.
func solveACDecoupled(g *grid.Grid, opts Options) (*Solution, error) {
	st, err := newACState(g, opts)
	if err != nil {
		return nil, err
	}
	nb, nq := len(st.pvpq), len(st.pq)
	dim := nb + nq
	if dim == 0 {
		return &Solution{Vm: st.vm, Va: st.va}, nil
	}

	// B′: the 1/X series-reactance Laplacian over non-slack buses — a
	// grounded Laplacian (slack row/col dropped), hence SPD on any grid
	// connected through the slack.
	bpTrips := make([]mat.Triplet, 0, 4*len(g.Branches))
	for _, br := range g.Branches {
		if !br.Status || br.X == 0 { //gridlint:ignore floatcmp X==0 marks an unmodelled branch sentinel, never a computed reactance
			continue
		}
		w := 1 / br.X
		f, t := st.posA[br.From], st.posA[br.To]
		if f >= 0 {
			bpTrips = append(bpTrips, mat.Triplet{Row: f, Col: f, Val: w})
		}
		if t >= 0 {
			bpTrips = append(bpTrips, mat.Triplet{Row: t, Col: t, Val: w})
		}
		if f >= 0 && t >= 0 {
			bpTrips = append(bpTrips,
				mat.Triplet{Row: f, Col: t, Val: -w},
				mat.Triplet{Row: t, Col: f, Val: -w},
			)
		}
	}
	bp := mat.NewSparse(nb, nb, bpTrips)

	// B″: −Im(Ybus) restricted to PQ buses (shunts, charging, and taps
	// included). Inductive grids make it SPD; if shunt compensation
	// breaks that, CG's curvature check reports it and the Newton
	// fallback takes over.
	var bpp *mat.Sparse
	if nq > 0 {
		qpos := make([]int, st.n)
		for i := range qpos {
			qpos[i] = -1
		}
		for k, i := range st.pq {
			qpos[i] = k
		}
		bppTrips := make([]mat.Triplet, 0, len(st.adj.cols))
		for _, i := range st.pq {
			ri := qpos[i]
			for k := st.adj.rowPtr[i]; k < st.adj.rowPtr[i+1]; k++ {
				if cj := qpos[st.adj.cols[k]]; cj >= 0 {
					bppTrips = append(bppTrips, mat.Triplet{Row: ri, Col: cj, Val: -st.adj.bv[k]})
				}
			}
		}
		bpp = mat.NewSparse(nq, nq, bppTrips)
	}

	cgOpts := mat.CGOptions{Tol: 1e-10, MaxIter: 40 * dim}
	fp := make([]float64, nb)
	fq := make([]float64, nq)
	f := make([]float64, dim)
	// The decoupled iteration converges linearly, so give it more outer
	// steps than Newton's default before declaring failure — but bail
	// out early on divergence or stall, so infeasible draws (the
	// builder's load-shedding loop probes many) fail cheaply instead of
	// burning the full budget before the Newton fallback runs.
	maxIter := 6 * opts.MaxIter
	best := math.Inf(1)
	stall := 0
	for iter := 0; iter <= maxIter; iter++ {
		st.calc()
		mx := st.mismatch(f)
		if mx < opts.Tol {
			return &Solution{Vm: st.vm, Va: st.va, Iterations: iter, Mismatch: mx}, nil
		}
		if math.IsNaN(mx) || mx > 1e6 {
			return nil, fmt.Errorf("%w: decoupled iteration diverged (mismatch %g)", ErrNoConvergence, mx)
		}
		if mx < 0.9*best {
			best = mx
			stall = 0
		} else if stall++; stall > 10 {
			return nil, fmt.Errorf("%w: decoupled iteration stalled at mismatch %g", ErrNoConvergence, mx)
		}
		if iter == maxIter {
			break
		}
		// P–θ half-step: B′ Δθ = ΔP / Vm.
		for k, i := range st.pvpq {
			fp[k] = (st.pcalc[i] - st.pSched[i]) / st.vm[i]
		}
		dva, err := mat.SolveCGOp(bp, fp, cgOpts)
		if err != nil {
			return nil, fmt.Errorf("powerflow: decoupled P-theta solve: %w", err)
		}
		for k, i := range st.pvpq {
			st.va[i] -= dva[k]
		}
		if nq > 0 {
			// Q–V half-step on refreshed injections: B″ ΔV = ΔQ / Vm.
			st.calc()
			for k, i := range st.pq {
				fq[k] = (st.qcalc[i] - st.qSched[i]) / st.vm[i]
			}
			dvm, err := mat.SolveCGOp(bpp, fq, cgOpts)
			if err != nil {
				return nil, fmt.Errorf("powerflow: decoupled Q-V solve: %w", err)
			}
			for k, i := range st.pq {
				st.vm[i] -= dvm[k]
				if st.vm[i] < 0.2 {
					st.vm[i] = 0.2 // keep the iteration away from voltage collapse
				}
			}
		}
	}
	return nil, fmt.Errorf("%w after %d decoupled iterations", ErrNoConvergence, maxIter)
}

// solveACSparseNewton is the full-Newton sparse fallback: the dense
// solver's exact iteration with sparse Jacobian assembly and CGNR
// inner solves (dense LU backing those).
func solveACSparseNewton(g *grid.Grid, opts Options) (*Solution, error) {
	st, err := newACState(g, opts)
	if err != nil {
		return nil, err
	}
	nb, nq := len(st.pvpq), len(st.pq)
	dim := nb + nq
	if dim == 0 {
		return &Solution{Vm: st.vm, Va: st.va}, nil
	}

	f := make([]float64, dim)
	var iter int
	for iter = 0; iter <= opts.MaxIter; iter++ {
		st.calc()
		mx := st.mismatch(f)
		if mx < opts.Tol {
			return &Solution{Vm: st.vm, Va: st.va, Iterations: iter, Mismatch: mx}, nil
		}
		if math.IsNaN(mx) || mx > 1e6 {
			return nil, fmt.Errorf("%w: Newton iteration diverged (mismatch %g)", ErrNoConvergence, mx)
		}
		if iter == opts.MaxIter {
			break
		}
		js := jacobianSparse(st.adj, st.vm, st.va, st.pcalc, st.qcalc, st.pvpq, st.pq, st.posA, st.posM)
		dx, err := solveNewtonStep(js, f, iter)
		if err != nil {
			return nil, err
		}
		for k, i := range st.pvpq {
			st.va[i] -= dx[k]
		}
		for k, i := range st.pq {
			st.vm[i] -= dx[nb+k]
			if st.vm[i] < 0.2 {
				st.vm[i] = 0.2 // keep the iteration away from voltage collapse
			}
		}
	}
	return nil, fmt.Errorf("%w after %d iterations", ErrNoConvergence, opts.MaxIter)
}

// luFallbackDim caps the dense-LU rescue inside the sparse Newton
// path: above this system size an O(dim³) factorization costs more
// than reporting failure (callers shed load or drop the scenario), so
// the iterative error propagates instead.
const luFallbackDim = 800

// solveNewtonStep solves J dx = f by preconditioned CGNR with a loose
// forcing tolerance (inexact Newton: the outer iteration checks true
// power mismatch, so the step only needs to point the right way),
// falling back to dense LU on breakdown for systems small enough that
// the O(dim³) rescue is cheaper than failing.
func solveNewtonStep(js *mat.Sparse, f []float64, iter int) ([]float64, error) {
	dim := len(f)
	op := newNormalEqOp(js)
	rhs := js.MulVecT(f)
	dx, cgErr := mat.SolveCGOp(op, rhs, mat.CGOptions{Tol: 1e-6, MaxIter: 4 * dim})
	if cgErr == nil {
		return dx, nil
	}
	if dim > luFallbackDim {
		return nil, fmt.Errorf("powerflow: Newton step CGNR failed at iteration %d: %w", iter, cgErr)
	}
	lu, err := mat.FactorLU(js.ToDense())
	if err != nil {
		return nil, fmt.Errorf("powerflow: singular Jacobian at iteration %d: %w", iter, err)
	}
	dx, err = lu.Solve(f)
	if err != nil {
		return nil, fmt.Errorf("powerflow: Jacobian solve failed: %w", err)
	}
	return dx, nil
}

// jacobianSparse assembles the polar Newton-Raphson Jacobian as CSR
// triplets using the exact per-entry identities of the dense jacobian
// (powerflow.go), walking only stored admittance entries.
//
//gridlint:unit vm pu
//gridlint:unit va rad
func jacobianSparse(adj *ybusAdj, vm, va, pcalc, qcalc []float64, pvpq, pq []int, posA, posM []int) *mat.Sparse {
	nb, nq := len(pvpq), len(pq)
	dim := nb + nq
	trips := make([]mat.Triplet, 0, 4*len(adj.cols))
	for _, i := range pvpq {
		ri := posA[i]
		var gii, bii float64
		for kk := adj.rowPtr[i]; kk < adj.rowPtr[i+1]; kk++ {
			if adj.cols[kk] == i {
				gii, bii = adj.gv[kk], adj.bv[kk]
				break
			}
		}
		// Diagonal terms in P_calc/Q_calc form.
		trips = append(trips, mat.Triplet{Row: ri, Col: ri, Val: -qcalc[i] - bii*vm[i]*vm[i]})
		if qi := posM[i]; qi >= 0 {
			trips = append(trips,
				mat.Triplet{Row: ri, Col: qi, Val: pcalc[i]/vm[i] + gii*vm[i]},
				mat.Triplet{Row: qi, Col: ri, Val: pcalc[i] - gii*vm[i]*vm[i]},
				mat.Triplet{Row: qi, Col: qi, Val: qcalc[i]/vm[i] - bii*vm[i]},
			)
		}
		for kk := adj.rowPtr[i]; kk < adj.rowPtr[i+1]; kk++ {
			k := adj.cols[kk]
			if k == i {
				continue
			}
			gik, bik := adj.gv[kk], adj.bv[kk]
			d := va[i] - va[k]
			c, s := math.Cos(d), math.Sin(d)
			vivk := vm[i] * vm[k]
			dpdva := vivk * (gik*s - bik*c)
			dqdva := -vivk * (gik*c + bik*s)
			dpdvm := vm[i] * (gik*c + bik*s)
			dqdvm := vm[i] * (gik*s - bik*c)
			if ck := posA[k]; ck >= 0 {
				trips = append(trips, mat.Triplet{Row: ri, Col: ck, Val: dpdva})
				if qi := posM[i]; qi >= 0 {
					trips = append(trips, mat.Triplet{Row: qi, Col: ck, Val: dqdva})
				}
			}
			if ck := posM[k]; ck >= 0 {
				trips = append(trips, mat.Triplet{Row: ri, Col: ck, Val: dpdvm})
				if qi := posM[i]; qi >= 0 {
					trips = append(trips, mat.Triplet{Row: qi, Col: ck, Val: dqdvm})
				}
			}
		}
	}
	return mat.NewSparse(dim, dim, trips)
}

// solveDCSparse solves the reduced DC system B' θ = P with CG on a CSR
// operator instead of dense LU. The reduced Laplacian of a connected
// grid is SPD, so plain preconditioned CG applies directly.
func solveDCSparse(g *grid.Grid) (*Solution, error) {
	n := g.N()
	slack, err := g.SlackIndex()
	if err != nil {
		return nil, err
	}
	// Reduced index map: bus i -> row red[i], slack dropped.
	red := make([]int, n)
	idx := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i == slack {
			red[i] = -1
			continue
		}
		red[i] = len(idx)
		idx = append(idx, i)
	}
	// Stamp the reduced Laplacian directly from branches — the same 1/X
	// weights grid.Laplacian uses, without the n² dense detour.
	trips := make([]mat.Triplet, 0, 4*len(g.Branches))
	for _, br := range g.Branches {
		if !br.Status || br.X == 0 { //gridlint:ignore floatcmp X==0 marks an unmodelled branch sentinel, never a computed reactance
			continue
		}
		w := 1 / br.X
		f, t := red[br.From], red[br.To]
		if f >= 0 {
			trips = append(trips, mat.Triplet{Row: f, Col: f, Val: w})
		}
		if t >= 0 {
			trips = append(trips, mat.Triplet{Row: t, Col: t, Val: w})
		}
		if f >= 0 && t >= 0 {
			trips = append(trips,
				mat.Triplet{Row: f, Col: t, Val: -w},
				mat.Triplet{Row: t, Col: f, Val: -w},
			)
		}
	}
	b := mat.NewSparse(len(idx), len(idx), trips)
	p := make([]float64, len(idx))
	for k, i := range idx {
		p[k] = g.Buses[i].Pg - g.Buses[i].Pd
	}
	th, err := mat.SolveCGOp(b, p, mat.CGOptions{Tol: 1e-12, MaxIter: 20 * len(idx)})
	if err != nil {
		return nil, fmt.Errorf("powerflow: DC solve failed (islanded grid?): %w", err)
	}
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = 1
	}
	for k, i := range idx {
		va[i] = th[k]
	}
	return &Solution{Vm: vm, Va: va, Iterations: 1}, nil
}
