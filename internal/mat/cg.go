package mat

import (
	"fmt"
	"math"
)

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖/‖b‖ (default 1e-10).
	Tol float64
	// MaxIter caps iterations (default 4n).
	MaxIter int
}

// SolveCG solves A x = b for symmetric positive definite A by the
// conjugate-gradient method with Jacobi (diagonal) preconditioning.
// Reduced grid Laplacians — the systems DC power flow solves — are SPD
// and sparse, where CG's O(nnz) iterations beat dense LU's O(n³) as
// systems grow. Returns ErrSingular (wrapped) when A is detectably not
// positive definite and a convergence error when MaxIter is exhausted.
func SolveCG(a *Dense, b []float64, opts CGOptions) ([]float64, error) {
	return SolveCGOp(a, b, opts)
}

// SolveCGOp is SolveCG over a matrix-free operator: any Op whose
// action is symmetric positive definite. When the operator also
// implements Diagonal, its diagonal builds the Jacobi preconditioner
// (and must be strictly positive); otherwise the identity
// preconditioner is used. Dense matrices take the exact code path the
// dense-only solver historically did, so results are bit-identical.
func SolveCGOp(a Op, b []float64, opts CGOptions) ([]float64, error) {
	rows, cols := a.Dims()
	n := rows
	if cols != n {
		return nil, fmt.Errorf("mat: SolveCG requires square matrix, got %dx%d", rows, cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mat: SolveCG rhs length %d != %d", len(b), n)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 4 * n
	}
	// Jacobi preconditioner from the operator diagonal when available.
	m := make([]float64, n)
	if dg, ok := a.(Diagonal); ok {
		diag := dg.Diag()
		for i := 0; i < n; i++ {
			d := diag[i]
			if d <= 0 {
				return nil, fmt.Errorf("mat: SolveCG diagonal %d = %g: %w", i, d, ErrSingular)
			}
			m[i] = 1 / d
		}
	} else {
		for i := range m {
			m[i] = 1
		}
	}
	bn := Norm2(b)
	if bn == 0 { //gridlint:ignore floatcmp exact-zero RHS has the exact solution x=0
		return make([]float64, n), nil
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	z := make([]float64, n)
	for i := range z {
		z[i] = m[i] * r[i]
	}
	p := make([]float64, n)
	copy(p, z)
	rz := Dot(r, z)
	ap := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		a.MulVecTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, fmt.Errorf("mat: SolveCG curvature %g at iteration %d: %w", pap, iter, ErrSingular)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if Norm2(r) <= opts.Tol*bn {
			return x, nil
		}
		for i := range z {
			z[i] = m[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("mat: SolveCG did not converge in %d iterations (relative residual %.2e)",
		opts.MaxIter, Norm2(r)/bn)
}
