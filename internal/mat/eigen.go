package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix:
// A = V diag(Values) Vᵀ with orthonormal columns in V. Eigenvalues are
// sorted in decreasing order.
type Eigen struct {
	Values []float64
	V      *Dense
}

// FactorEigenSym computes the eigendecomposition of a symmetric matrix
// by the classical (two-sided) Jacobi method. Symmetry is required but
// only spot-verified; pass tol <= 0 for the default symmetry tolerance.
func FactorEigenSym(a *Dense, tol float64) (*Eigen, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorEigenSym requires square matrix, got %dx%d", a.rows, a.cols)
	}
	if tol <= 0 {
		tol = 1e-9 * (1 + a.MaxAbs())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, fmt.Errorf("mat: matrix not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	eps := math.Nextafter(1, 2) - 1

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm for convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(off) <= eps*float64(n)*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 { //gridlint:ignore floatcmp Jacobi rotation of an exactly-zero off-diagonal is the identity
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/columns p and q of the working matrix.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate the rotation into V.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	sorted := make([]float64, n)
	for k, i := range order {
		sorted[k] = vals[i]
	}
	return &Eigen{Values: sorted, V: v.SelectCols(order)}, nil
}

// Cholesky holds the lower-triangular factor of a symmetric positive
// definite matrix: A = L Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization, returning
// ErrSingular (wrapped) if the matrix is not positive definite.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorCholesky requires square matrix, got %dx%d", a.rows, a.cols)
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("mat: not positive definite at pivot %d: %w", j, ErrSingular)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l }

// Solve solves A x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: Cholesky.Solve rhs length %d != %d", len(b), n)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LogDet returns the log-determinant of the factored matrix.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.l.rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}
