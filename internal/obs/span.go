package obs

import (
	"context"
	"sync"
	"time"

	"pmuoutage/api"
)

// Span tracing with tail-based sampling.
//
// Every hop starts a span (or records a completed one with RecordSpan);
// spans accumulate per trace ID in a pending table, and the trace is
// finalized when its root span — the one started at process ingress —
// ends. Only then does the tracer decide whether to keep the trace:
// slow (root latency over a threshold), erroneous (any span carries an
// error), or randomly sampled at a low rate. Kept traces land in a
// fixed-size ring served at GET /debug/traces; everything else is
// dropped with no per-trace allocation beyond the pending entry.
//
// A nil *Tracer is the disabled state: StartSpan, End, and RecordSpan
// are allocation-free no-ops (AllocsPerRun-pinned), so tracing can be
// compiled into every hot path unconditionally.

// TraceParentHeader carries trace ID plus parent span ID across the
// wire, traceparent-style: "00-<trace 16 hex>-<span 16 hex>-01".
// (The W3C header uses 128/64-bit IDs; ours are 64/64, so the format
// is deliberately a dialect, same layout with a shorter trace field.)
const TraceParentHeader = "Traceparent"

// SpanHeader echoes, on every response, the ID of the span that served
// the request — the hook that lets a client stitch its view of a call
// to the server's retained trace.
const SpanHeader = "X-Span-Id"

// FormatTraceParent renders the wire header for a trace ID (16 hex
// chars, as minted by NewTraceID) and a parent span ID. A zero span ID
// means "no parent span": the receiver's root span becomes a child of
// the trace only.
func FormatTraceParent(traceID string, span uint64) string {
	var buf [39]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	copy(buf[3:19], traceID)
	buf[19] = '-'
	for i := 35; i >= 20; i-- {
		buf[i] = hexdigits[span&0xf]
		span >>= 4
	}
	buf[36] = '-'
	buf[37], buf[38] = '0', '1'
	return string(buf[:])
}

// ParseTraceParent decodes the wire header. It accepts any flags byte
// and requires version 00; ok is false for anything malformed.
func ParseTraceParent(v string) (traceID string, parent uint64, ok bool) {
	if len(v) != 39 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[19] != '-' || v[36] != '-' {
		return "", 0, false
	}
	traceID = v[3:19]
	if _, ok := parseID(traceID); !ok {
		return "", 0, false
	}
	parent, ok = parseID(v[20:36])
	if !ok {
		return "", 0, false
	}
	return traceID, parent, true
}

// spanCtxKey keys the active *Span in a context.
type spanCtxKey struct{}

// remoteParentKey keys a parent span ID received over the wire, before
// any local span has started.
type remoteParentKey struct{}

// WithRemoteParent returns ctx carrying a parent span ID received over
// the wire; the next span started from ctx becomes its child. A zero
// parent returns ctx unchanged.
func WithRemoteParent(ctx context.Context, parent uint64) context.Context {
	if parent == 0 {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, parent)
}

// SpanFromContext returns the active span carried by ctx, or nil.
//
//gridlint:zeroalloc
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ParentSpanID returns the span ID a new child started from ctx would
// have as its parent: the active local span if any, else a remote
// parent from the wire, else zero. This is what the client stamps into
// the outgoing Traceparent header.
//
//gridlint:zeroalloc
func ParentSpanID(ctx context.Context) uint64 {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.id
	}
	parent, _ := ctx.Value(remoteParentKey{}).(uint64)
	return parent
}

// maxSpanAttrs bounds per-span attributes; SetAttr beyond the cap is
// silently dropped — attributes are debugging hints, not data.
const maxSpanAttrs = 4

// spanData is the recorded form of one completed span, copied into the
// tracer's pending table at End so the *Span itself is never retained.
type spanData struct {
	id     uint64
	parent uint64
	root   bool
	stage  string
	start  time.Time
	end    time.Time
	err    string
	attrs  [maxSpanAttrs][2]string
	nattrs int
}

// Span is one in-flight span. All methods are nil-safe: a nil *Span —
// what StartSpan returns when tracing is disabled — ignores every call.
// A Span must not be used after End.
type Span struct {
	tr      *Tracer
	traceID string
	ended   bool
	spanData
}

// ID returns the span ID as 16 hex characters (allocates; used for the
// response-header echo, not on per-sample paths).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return formatID(s.id)
}

// SetAttr attaches one key/value attribute, up to maxSpanAttrs.
//
//gridlint:zeroalloc
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs][0], s.attrs[s.nattrs][1] = k, v
	s.nattrs++
}

// SetError marks the span (and so the trace) erroneous. Nil errors are
// ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// SetErrorString is SetError for callers that already hold a message
// (e.g. an HTTP status text) — no error value allocated.
//
//gridlint:zeroalloc
func (s *Span) SetErrorString(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.err = msg
}

// End completes the span and hands it to the tracer; ending the root
// span finalizes the trace through tail sampling. Safe to call on nil
// and idempotent.
//
//gridlint:zeroalloc
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.finish()
}

func (s *Span) finish() {
	s.ended = true
	s.end = time.Now()
	s.tr.record(s.traceID, &s.spanData)
}

// TracerConfig sizes a Tracer. The zero value gets usable defaults; a
// negative SlowThreshold disables the latency rule, SampleEvery 0
// disables random sampling.
type TracerConfig struct {
	// Capacity is the retained-trace ring size (default 128).
	Capacity int
	// SlowThreshold keeps any trace whose root span takes at least
	// this long (default 100ms; negative disables).
	SlowThreshold time.Duration
	// SampleEvery keeps every Nth finalized trace regardless of
	// latency or errors (0 disables; 1 keeps everything).
	SampleEvery int
	// MaxSpans bounds spans retained per trace (default 64); extras
	// are counted in Trace.DroppedSpans.
	MaxSpans int
	// MaxPending bounds concurrently pending traces (default 1024);
	// spans for traces beyond the bound are dropped, which protects
	// the tracer against roots that never end (lost wire parents).
	MaxPending int
}

// pendingTrace accumulates a trace's spans until its root ends.
type pendingTrace struct {
	spans   []spanData
	dropped int
	hasErr  bool
	touched time.Time // newest span end; stale entries are orphans
}

// stalePending is how long a pending trace may sit untouched before the
// tracer treats it as an orphan and sweeps it: its root already ended
// (a late shadow-copy span re-created the entry) or never will (a lost
// wire parent). Swept only when the table is full, so the common case
// pays nothing.
const stalePending = time.Minute

// Tracer records spans and tail-samples completed traces into a ring.
// A nil *Tracer is valid and disabled. All methods are safe for
// concurrent use.
type Tracer struct {
	cfg TracerConfig

	// kept/dropped count finalized traces by sampling outcome; wired
	// into a Registry via AttachCounter by whoever owns the tracer.
	kept    Counter
	dropped Counter

	mu        sync.Mutex
	pending   map[string]*pendingTrace
	finalized uint64
	ring      []api.Trace
	next      int
	filled    int
}

// NewTracer builds an enabled tracer. Use a nil *Tracer for "off".
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 128
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 64
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1024
	}
	return &Tracer{
		cfg:     cfg,
		pending: make(map[string]*pendingTrace),
		ring:    make([]api.Trace, cfg.Capacity),
	}
}

// KeptCounter and DroppedCounter expose the sampling-outcome counters
// for Registry.AttachCounter.
func (t *Tracer) KeptCounter() *Counter    { return &t.kept }
func (t *Tracer) DroppedCounter() *Counter { return &t.dropped }

// StartSpan starts a span for stage under ctx's trace (minting a trace
// ID if ctx has none) and returns a derived context carrying the span.
// The first span started with no local parent is the root: its End
// finalizes the trace. On a nil tracer it returns ctx and a nil span,
// allocation-free.
//
//gridlint:zeroalloc
func (t *Tracer) StartSpan(ctx context.Context, stage string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, stage)
}

func (t *Tracer) start(ctx context.Context, stage string) (context.Context, *Span) {
	traceID := TraceID(ctx)
	if traceID == "" {
		traceID = NewTraceID()
		ctx = WithTraceID(ctx, traceID)
	}
	sp := &Span{tr: t, traceID: traceID}
	sp.id = mintID()
	sp.stage = stage
	sp.start = time.Now()
	if parent := SpanFromContext(ctx); parent != nil {
		sp.parent = parent.id
	} else {
		sp.parent, _ = ctx.Value(remoteParentKey{}).(uint64)
		sp.root = true
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// RecordSpan records an already-measured child span in one call — the
// form the shard pipeline uses, where stage timings exist as plain
// time.Times on the batch path. It is a no-op (and allocation-free)
// when the tracer is nil or ctx carries no trace ID: the untraced hot
// path pays two pointer lookups.
//
//gridlint:zeroalloc
func (t *Tracer) RecordSpan(ctx context.Context, stage string, start, end time.Time, err error) {
	if t == nil {
		return
	}
	t.recordCtx(ctx, stage, start, end, err)
}

func (t *Tracer) recordCtx(ctx context.Context, stage string, start, end time.Time, err error) {
	traceID := TraceID(ctx)
	if traceID == "" {
		return
	}
	d := spanData{id: mintID(), parent: ParentSpanID(ctx), stage: stage, start: start, end: end}
	if err != nil {
		d.err = err.Error()
	}
	t.record(traceID, &d)
}

// record files one completed span; a root span finalizes its trace.
func (t *Tracer) record(traceID string, d *spanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pt := t.pending[traceID]
	if pt == nil {
		if len(t.pending) >= t.cfg.MaxPending {
			t.sweepLocked(d.end)
		}
		if len(t.pending) >= t.cfg.MaxPending {
			if !d.root {
				return // shed: pending table full, root unseen
			}
			// A root must still finalize — sample it as a
			// single-span trace rather than leaking the decision.
			pt = &pendingTrace{spans: make([]spanData, 0, 1)}
		} else {
			pt = &pendingTrace{spans: make([]spanData, 0, t.cfg.MaxSpans)}
			t.pending[traceID] = pt
		}
	}
	if len(pt.spans) < t.cfg.MaxSpans {
		pt.spans = append(pt.spans, *d)
	} else {
		pt.dropped++
	}
	if d.end.After(pt.touched) {
		pt.touched = d.end
	}
	if d.err != "" {
		pt.hasErr = true
	}
	if !d.root {
		return
	}
	delete(t.pending, traceID)
	t.finalized++
	reason := t.keepReason(pt, d)
	if reason == "" {
		t.dropped.Inc()
		return
	}
	t.kept.Inc()
	t.retain(traceID, pt, reason)
}

// sweepLocked deletes pending traces untouched for stalePending as of
// now. Called with t.mu held, only when the table is at capacity.
func (t *Tracer) sweepLocked(now time.Time) {
	cut := now.Add(-stalePending)
	for id, pt := range t.pending {
		if pt.touched.Before(cut) {
			delete(t.pending, id)
			t.dropped.Inc()
		}
	}
}

// keepReason is the tail-sampling decision, taken with every span of
// the trace in hand. Empty means drop.
func (t *Tracer) keepReason(pt *pendingTrace, root *spanData) string {
	if pt.hasErr {
		return api.TraceKeptError
	}
	if t.cfg.SlowThreshold >= 0 && root.end.Sub(root.start) >= t.cfg.SlowThreshold {
		return api.TraceKeptSlow
	}
	if t.cfg.SampleEvery > 0 && t.finalized%uint64(t.cfg.SampleEvery) == 0 {
		return api.TraceKeptSampled
	}
	return ""
}

// retain converts a kept trace to its wire form and writes it into the
// ring, overwriting the oldest entry. Called with t.mu held.
func (t *Tracer) retain(traceID string, pt *pendingTrace, reason string) {
	tr := api.Trace{
		TraceID:      traceID,
		Kept:         reason,
		DroppedSpans: pt.dropped,
		Spans:        make([]api.TraceSpan, len(pt.spans)),
	}
	var first, last time.Time
	for i := range pt.spans {
		d := &pt.spans[i]
		ws := api.TraceSpan{
			ID:          formatID(d.id),
			Stage:       d.stage,
			Root:        d.root,
			StartUnixNS: d.start.UnixNano(),
			DurationNS:  d.end.Sub(d.start).Nanoseconds(),
			Err:         d.err,
		}
		if d.parent != 0 {
			ws.Parent = formatID(d.parent)
		}
		if d.nattrs > 0 {
			ws.Attrs = make(map[string]string, d.nattrs)
			for a := 0; a < d.nattrs; a++ {
				ws.Attrs[d.attrs[a][0]] = d.attrs[a][1]
			}
		}
		tr.Spans[i] = ws
		if first.IsZero() || d.start.Before(first) {
			first = d.start
		}
		if d.end.After(last) {
			last = d.end
		}
	}
	tr.StartUnixNS = first.UnixNano()
	tr.DurationNS = last.Sub(first).Nanoseconds()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
}

// Traces returns the retained traces, newest first. Nil tracers return
// nil.
func (t *Tracer) Traces() []api.Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.Trace, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// TraceByID fetches one retained trace.
func (t *Tracer) TraceByID(id string) (api.Trace, bool) {
	if t == nil {
		return api.Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.filled; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if t.ring[idx].TraceID == id {
			return t.ring[idx], true
		}
	}
	return api.Trace{}, false
}

// PendingLen reports the pending-trace table size (tests and the soak
// report use it to spot leaks from roots that never end).
func (t *Tracer) PendingLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}
