package pmunet

import (
	"math"
	"math/rand"
	"testing"
)

// TestEnumerationMatchesMonteCarlo cross-validates the two evaluations of
// Eq. (13): the exact 2^L weighted sum and the SampleMask Monte Carlo
// estimator must agree on a simple pattern statistic (expected missing
// count), since the figures rely on the Monte Carlo path for large L.
func TestEnumerationMatchesMonteCarlo(t *testing.T) {
	g := miniGrid(10)
	nw, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel := Reliability{RPMU: 0.92, RLink: 0.98}

	var exact float64
	err = nw.EnumeratePatterns(rel, func(m Mask, p float64) bool {
		exact += p * float64(m.MissingCount())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	const trials = 200000
	var mc float64
	for k := 0; k < trials; k++ {
		mc += float64(nw.SampleMask(rel, rng).MissingCount())
	}
	mc /= trials

	// Analytic check too: E[missing] = L * (1 - q).
	analytic := 10 * (1 - rel.DeviceAvailability())
	if math.Abs(exact-analytic) > 1e-9 {
		t.Fatalf("enumeration expectation %v, analytic %v", exact, analytic)
	}
	if math.Abs(mc-exact) > 0.02*exact+0.005 {
		t.Fatalf("Monte Carlo %v vs exact %v", mc, exact)
	}
}
