// Package globalrand is golden-test input for the globalrand analyzer.
package globalrand

import "math/rand"

func draw() float64 {
	x := rand.Float64()              // want `rand.Float64 uses the global math/rand generator`
	r := rand.New(rand.NewSource(1)) // constructors are the fix, not a finding
	return x + r.Float64() + rand.ExpFloat64() // want `rand.ExpFloat64 uses the global math/rand generator`
}
