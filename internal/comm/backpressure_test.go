package comm

import (
	"testing"
	"time"
)

// TestPendingMapBounded is the backpressure regression test: a stream of
// sequence numbers that never complete (every frame covers only bus 0 of
// 4) must not grow the pending map past maxPending. Before the bound, a
// PDC stuck on skewed timestamps could hold an assembly per sequence
// forever within one deadline window. The deadline is set long so the
// sweep cannot drain anything — only the eviction path is under test.
func TestPendingMapBounded(t *testing.T) {
	c, err := NewCollector(4, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for seq := 0; seq < 4*maxPending; seq++ {
		c.ingest(ClusterFrame{PDC: 0, Seq: seq, Buses: []int{0}, Vm: []float64{1}, Va: []float64{0}})
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n > maxPending {
		t.Fatalf("pending map grew to %d assemblies, bound is %d", n, maxPending)
	}

	// The evicted assemblies were emitted (up to the out buffer), not
	// dropped silently, and each carries its gaps as missing data.
	select {
	case a := <-c.Samples():
		if a.Sample.Complete() {
			t.Fatalf("evicted assembly %d emitted as complete", a.Seq)
		}
		if !a.Sample.Mask[1] || a.Sample.Mask[0] {
			t.Fatalf("evicted assembly %d has wrong mask %v", a.Seq, a.Sample.Mask)
		}
	default:
		t.Fatal("no evicted assembly was emitted")
	}
}

// TestEvictionTakesStalest checks the eviction order: when the bound is
// hit, the oldest assembly goes first, so fresh sequences still get
// their full deadline.
func TestEvictionTakesStalest(t *testing.T) {
	c, err := NewCollector(4, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for seq := 0; seq < maxPending; seq++ {
		c.ingest(ClusterFrame{PDC: 0, Seq: seq, Buses: []int{0}, Vm: []float64{1}, Va: []float64{0}})
	}
	// Age the first assembly far into the past, then overflow by one.
	c.mu.Lock()
	c.pending[0].started = time.Now().Add(-time.Hour)
	c.mu.Unlock()
	c.ingest(ClusterFrame{PDC: 0, Seq: maxPending, Buses: []int{0}, Vm: []float64{1}, Va: []float64{0}})

	c.mu.Lock()
	_, survived := c.pending[0]
	_, fresh := c.pending[maxPending]
	c.mu.Unlock()
	if survived {
		t.Fatal("stalest assembly survived the eviction")
	}
	if !fresh {
		t.Fatal("the new sequence was not admitted after eviction")
	}
	a := <-c.Samples()
	if a.Seq != 0 {
		t.Fatalf("evicted Seq = %d, want the stalest (0)", a.Seq)
	}
}
