// Multi-outage: a severe event takes out several lines of one node at
// once — the scenario the paper's intersection subspaces S_i^∩ target
// (§IV-C, Fig. 3). The detector's node scores should single out the hub
// node even when the event also silences its PMU.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmuoutage"
)

func main() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 40,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Find a bus with at least three valid outage lines and take two of
	// them out simultaneously (taking all lines would island the bus).
	lines := sys.Lines()
	valid := map[int]bool{}
	for _, e := range sys.ValidLines() {
		valid[e] = true
	}
	byBus := map[int][]int{}
	for _, l := range lines {
		if valid[l.Index] {
			byBus[l.FromBus] = append(byBus[l.FromBus], l.Index)
			byBus[l.ToBus] = append(byBus[l.ToBus], l.Index)
		}
	}
	hub, best := 0, 0
	for bus, es := range byBus {
		if len(es) > best {
			hub, best = bus, len(es)
		}
	}
	out := byBus[hub][:2]
	fmt.Printf("severe event at bus %d (%d incident lines): lines %v disconnected\n", hub, best, out)

	samples, err := sys.SimulateOutage(out, 2)
	if err != nil {
		log.Fatal(err)
	}

	for _, silenced := range []bool{false, true} {
		smp := samples[0]
		label := "all PMUs reporting"
		if silenced {
			smp = smp.WithMissing(hub - 1) // the event kills the hub's PMU
			label = fmt.Sprintf("bus-%d PMU dark", hub)
		}
		rep, err := sys.Detect(smp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n", label)
		fmt.Printf("outage detected: %v\n", rep.Outage)
		for _, l := range rep.Lines {
			mark := " "
			for _, e := range out {
				if e == l.Index {
					mark = "*"
				}
			}
			fmt.Printf("  %s line %d (bus %d - bus %d)\n", mark, l.Index, l.FromBus, l.ToBus)
		}
		// The hub should rank among the closest nodes.
		type ns struct {
			bus   int
			score float64
		}
		var scores []ns
		for i, v := range rep.NodeScores {
			scores = append(scores, ns{i + 1, v})
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
		fmt.Printf("closest nodes:")
		for _, s := range scores[:4] {
			fmt.Printf(" bus %d", s.bus)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = truly outaged line)")
}
