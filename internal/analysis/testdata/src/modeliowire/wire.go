// Package api is golden-test input for modelio's wire-tag rule: the
// package name puts every exported struct on the HTTP wire surface, so
// every exported, non-embedded field must pin its name with a json tag.
package api

// DetectRequest is fully tagged: no findings.
type DetectRequest struct {
	Shard   string    `json:"shard"`
	Samples []float64 `json:"samples"`
}

// ShardStatus mixes tagged, untagged, and excluded fields.
type ShardStatus struct {
	Name  string `json:"name"`
	State string // want `exported field ShardStatus\.State is a wire type of package api but has no json tag`
	Local string `json:"-"`
	depth int    // unexported: exempt
}

// Envelope embeds another wire struct; the embedded field itself is
// exempt (encoding/json inlines it) but its own fields are checked at
// their declaration.
type Envelope struct {
	ShardStatus
	TraceID string // want `exported field Envelope\.TraceID is a wire type of package api but has no json tag`
}

// Code is not a struct: ignored by the rule.
type Code string

// helper is unexported: its fields are not wire surface.
type helper struct {
	Internal string
}
