package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func mustFrame(n int, missing ...int) *Frame {
	f := &Frame{}
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := 0; i < n; i++ {
		vm[i] = 1.0 + 0.01*float64(i)
		va[i] = -0.3 + 0.05*float64(i)
	}
	mask := make([]bool, n)
	for _, b := range missing {
		mask[b] = true
	}
	if err := f.Pack(4242, vm, va, mask); err != nil {
		panic(err)
	}
	return f
}

func testFrame(t *testing.T, n int, missing ...int) *Frame {
	t.Helper()
	return mustFrame(n, missing...)
}

func TestRoundTripByteExact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		missing []int
	}{
		{"one-bus", 1, nil},
		{"ieee14", 14, nil},
		{"ieee14-missing", 14, []int{0, 7, 13}},
		{"ieee118", 118, []int{5}},
		{"odd-bitmap", 9, []int{8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := testFrame(t, tc.n, tc.missing...)
			enc, err := AppendFrame(nil, f)
			if err != nil {
				t.Fatalf("AppendFrame: %v", err)
			}
			if len(enc) != EncodedSize(tc.n, len(tc.missing) > 0) {
				t.Fatalf("encoded %d bytes, want %d", len(enc), EncodedSize(tc.n, len(tc.missing) > 0))
			}
			var got Frame
			consumed, err := DecodeFrame(enc, &got)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if consumed != len(enc) {
				t.Fatalf("consumed %d, want %d", consumed, len(enc))
			}
			if got.Seq != f.Seq || got.Buses != f.Buses || got.Flags != f.Flags {
				t.Fatalf("header mismatch: got %+v want %+v", got, *f)
			}
			for i := 0; i < tc.n; i++ {
				if got.Vm[i] != f.Vm[i] || got.Va[i] != f.Va[i] {
					t.Fatalf("bus %d phasor mismatch", i)
				}
			}
			for i := 0; i < tc.n; i++ {
				if got.IsMissing(i) != f.IsMissing(i) {
					t.Fatalf("bus %d missing bit mismatch", i)
				}
			}
			re, err := AppendFrame(nil, &got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(re, enc) {
				t.Fatalf("re-encode not byte-identical:\n got %x\nwant %x", re, enc)
			}
		})
	}
}

// crc16Ref is an independent bit-by-bit CRC-CCITT implementation used
// to cross-check the table-driven one in the codec.
func crc16Ref(b []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, x := range b {
		crc ^= uint16(x) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func TestGoldenLayout(t *testing.T) {
	f := &Frame{}
	if err := f.Pack(0x01020304, []float64{1.0, 0.5}, []float64{-0.25, 0.125}, []bool{false, true}); err != nil {
		t.Fatalf("Pack: %v", err)
	}
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	wantSize := headerSize + 1 + 2*16 + crcSize
	if len(enc) != wantSize {
		t.Fatalf("size %d, want %d", len(enc), wantSize)
	}
	if enc[0] != 0xAA || enc[1] != 0x31 {
		t.Fatalf("sync bytes %x %x", enc[0], enc[1])
	}
	if binary.BigEndian.Uint16(enc[2:]) != uint16(wantSize) {
		t.Fatalf("size field %d", binary.BigEndian.Uint16(enc[2:]))
	}
	if enc[4] != Version {
		t.Fatalf("version byte %d", enc[4])
	}
	if binary.BigEndian.Uint32(enc[5:]) != 0x01020304 {
		t.Fatalf("seq field %x", enc[5:9])
	}
	if binary.BigEndian.Uint16(enc[9:]) != 2 {
		t.Fatalf("bus count field %d", binary.BigEndian.Uint16(enc[9:]))
	}
	if enc[11] != FlagMissing {
		t.Fatalf("flags byte %x", enc[11])
	}
	if enc[12] != 0x02 { // bit 1 set = bus 1 missing
		t.Fatalf("bitmap byte %x", enc[12])
	}
	if got := math.Float64frombits(binary.BigEndian.Uint64(enc[13:])); got != 1.0 {
		t.Fatalf("vm[0] on wire = %v", got)
	}
	if got := math.Float64frombits(binary.BigEndian.Uint64(enc[13+16:])); got != -0.25 {
		t.Fatalf("va[0] on wire = %v", got)
	}
	body := enc[:len(enc)-crcSize]
	if got, want := binary.BigEndian.Uint16(enc[len(enc)-crcSize:]), crc16Ref(body); got != want {
		t.Fatalf("CRC on wire %04x, reference %04x", got, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	f := testFrame(t, 3, 1)
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	mut := func(mutate func([]byte) []byte) []byte {
		c := append([]byte(nil), enc...)
		return mutate(c)
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated-header", enc[:8], ErrShort},
		{"truncated-body", enc[:len(enc)-4], ErrShort},
		{"bad-sync", mut(func(b []byte) []byte { b[0] = 0x00; return b }), ErrMagic},
		{"bad-version", mut(func(b []byte) []byte { b[4] = 9; return b }), ErrVersion},
		{"zero-buses", mut(func(b []byte) []byte { binary.BigEndian.PutUint16(b[9:], 0); return b }), ErrFrame},
		{"huge-buses", mut(func(b []byte) []byte { binary.BigEndian.PutUint16(b[9:], MaxBuses+1); return b }), ErrFrame},
		{"unknown-flag", mut(func(b []byte) []byte { b[11] |= 0x80; return b }), ErrFrame},
		{"size-mismatch", mut(func(b []byte) []byte { binary.BigEndian.PutUint16(b[2:], uint16(len(b)+8)); return b }), ErrFrame},
		{"flipped-phasor", mut(func(b []byte) []byte { b[20] ^= 0xFF; return b }), ErrCRC},
		{"flipped-crc", mut(func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }), ErrCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Frame
			if _, err := DecodeFrame(tc.buf, &g); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	f := testFrame(t, 5)
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	stream := append(append([]byte(nil), enc...), 0xDE, 0xAD, 0xBE, 0xEF)
	size, err := FrameSize(stream)
	if err != nil || size != len(enc) {
		t.Fatalf("FrameSize = %d, %v; want %d", size, err, len(enc))
	}
	var g Frame
	consumed, err := DecodeFrame(stream, &g)
	if err != nil || consumed != len(enc) {
		t.Fatalf("DecodeFrame = %d, %v; want %d", consumed, err, len(enc))
	}
}

func TestPackValidation(t *testing.T) {
	var f Frame
	vm := []float64{1, 1}
	if err := f.Pack(1, nil, nil, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("empty pack: %v", err)
	}
	if err := f.Pack(1, vm, vm[:1], nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("mismatched va: %v", err)
	}
	if err := f.Pack(1, vm, vm, []bool{true}); !errors.Is(err, ErrFrame) {
		t.Fatalf("mismatched mask: %v", err)
	}
	big := make([]float64, MaxBuses+1)
	if err := f.Pack(1, big, big, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized pack: %v", err)
	}
}

// TestFrameReuseShrinks pins that a pooled frame decoded for a big grid
// then a small one carries no stale state between the two.
func TestFrameReuseShrinks(t *testing.T) {
	big := testFrame(t, 32, 3, 31)
	small := testFrame(t, 2)
	encBig, _ := AppendFrame(nil, big)
	encSmall, _ := AppendFrame(nil, small)
	f := GetFrame()
	defer PutFrame(f)
	if _, err := DecodeFrame(encBig, f); err != nil {
		t.Fatalf("decode big: %v", err)
	}
	if _, err := DecodeFrame(encSmall, f); err != nil {
		t.Fatalf("decode small: %v", err)
	}
	if f.N() != 2 || f.Flags != 0 {
		t.Fatalf("stale frame state: n=%d flags=%x", f.N(), f.Flags)
	}
	for i := 0; i < f.N(); i++ {
		if f.IsMissing(i) {
			t.Fatalf("stale missing bit on bus %d", i)
		}
	}
	re, err := AppendFrame(nil, f)
	if err != nil || !bytes.Equal(re, encSmall) {
		t.Fatalf("reused frame re-encode mismatch (%v)", err)
	}
}

func TestBufferReadFrom(t *testing.T) {
	payload := bytes.Repeat([]byte("pmu-frame-bytes "), 600) // > initial 4 KiB capacity
	b := GetBuffer()
	defer PutBuffer(b)
	n, err := b.ReadFrom(strings.NewReader(string(payload)))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("ReadFrom = %d, %v", n, err)
	}
	if !bytes.Equal(b.B, payload) {
		t.Fatal("buffer contents mismatch")
	}
}

// TestDecodeFrameAllocs pins the steady-state decode path at zero
// allocations, backing the //gridlint:zeroalloc annotation on
// DecodeFrame.
func TestDecodeFrameAllocs(t *testing.T) {
	src := testFrame(t, 14, 2, 9)
	enc, err := AppendFrame(nil, src)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	f := GetFrame()
	defer PutFrame(f)
	if _, err := DecodeFrame(enc, f); err != nil { // warm the slices
		t.Fatalf("DecodeFrame: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeFrame(enc, f); err != nil {
			t.Errorf("DecodeFrame: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeFrame allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestPackAllocs pins the steady-state Pack path at zero allocations,
// backing the //gridlint:zeroalloc annotation on Pack.
func TestPackAllocs(t *testing.T) {
	n := 14
	vm := make([]float64, n)
	va := make([]float64, n)
	mask := make([]bool, n)
	mask[3] = true
	for i := range vm {
		vm[i] = 1.01
		va[i] = -0.2
	}
	f := GetFrame()
	defer PutFrame(f)
	if err := f.Pack(1, vm, va, mask); err != nil { // warm the slices
		t.Fatalf("Pack: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := f.Pack(2, vm, va, mask); err != nil {
			t.Errorf("Pack: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Pack allocates %.1f allocs/op, want 0", allocs)
	}
}

func FuzzDecodeFrame(f *testing.F) {
	small, _ := AppendFrame(nil, mustFrame(1))
	miss, _ := AppendFrame(nil, mustFrame(9, 0, 8))
	f.Add(small)
	f.Add(miss)
	f.Add([]byte{sync0, sync1, 0, 30, Version})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		consumed, err := DecodeFrame(data, &fr)
		if err != nil {
			return
		}
		if consumed < headerSize+crcSize || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		re, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("re-encode of valid frame failed: %v", err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:consumed], re)
		}
	})
}

// jsonSample mirrors the facade's JSON sample shape for the codec
// comparison benchmarks.
type jsonSample struct {
	Vm      []float64 `json:"vm"`
	Va      []float64 `json:"va"`
	Missing []int     `json:"missing,omitempty"`
}

func benchVectors(n int) ([]float64, []float64) {
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = 1.0 + 0.001*float64(i)
		va[i] = -0.5 + 0.002*float64(i)
	}
	return vm, va
}

func BenchmarkDecodeFrame(b *testing.B) {
	vm, va := benchVectors(118)
	var src Frame
	if err := src.Pack(7, vm, va, nil); err != nil {
		b.Fatal(err)
	}
	enc, err := AppendFrame(nil, &src)
	if err != nil {
		b.Fatal(err)
	}
	var f Frame
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(enc, &f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeJSON(b *testing.B) {
	vm, va := benchVectors(118)
	enc, err := json.Marshal(jsonSample{Vm: vm, Va: va})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s jsonSample
		if err := json.Unmarshal(enc, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFrame(b *testing.B) {
	vm, va := benchVectors(118)
	var f Frame
	if err := f.Pack(7, vm, va, nil); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, EncodedSize(118, true))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
	}
}
