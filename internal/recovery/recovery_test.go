package recovery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmuoutage/internal/mat"
)

// lowRankMatrix builds an exactly rank-r d x t matrix plus optional noise.
func lowRankMatrix(rng *rand.Rand, d, t, r int, noise float64) *mat.Dense {
	u := mat.NewDense(d, r)
	v := mat.NewDense(t, r)
	for i := 0; i < d; i++ {
		for k := 0; k < r; k++ {
			u.Set(i, k, rng.NormFloat64())
		}
	}
	for j := 0; j < t; j++ {
		for k := 0; k < r; k++ {
			v.Set(j, k, rng.NormFloat64())
		}
	}
	x := u.Mul(v.T())
	if noise > 0 {
		for i := 0; i < d; i++ {
			for j := 0; j < t; j++ {
				x.Add(i, j, noise*rng.NormFloat64())
			}
		}
	}
	return x
}

func TestBasisValidation(t *testing.T) {
	if _, err := Basis(mat.NewDense(0, 0), 2); err == nil {
		t.Fatal("expected error for empty history")
	}
	if _, err := Basis(mat.NewDense(3, 4), 2); err == nil {
		t.Fatal("expected error for zero history")
	}
}

func TestBasisClampsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankMatrix(rng, 8, 12, 2, 0)
	b, err := Basis(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols() != 2 {
		t.Fatalf("basis rank = %d, want 2", b.Cols())
	}
}

func TestSubspaceImputeExactOnLowRank(t *testing.T) {
	// A sample drawn from the same low-rank model must be recovered
	// exactly when enough entries are observed.
	rng := rand.New(rand.NewSource(2))
	d, r := 10, 2
	x := lowRankMatrix(rng, d, 30, r, 0)
	basis, err := Basis(x, r)
	if err != nil {
		t.Fatal(err)
	}
	// New sample in the same column space: combination of basis columns.
	truth := mat.AddVec(
		mat.ScaleVec(1.3, basis.Col(0)),
		mat.ScaleVec(-0.7, basis.Col(1)),
	)
	sample := append([]float64(nil), truth...)
	missing := make([]bool, d)
	missing[3], missing[7] = true, true
	sample[3], sample[7] = 0, 0

	rec, err := SubspaceImpute(basis, sample, missing)
	if err != nil {
		t.Fatal(err)
	}
	rmse, n := ImputeError(truth, rec, missing)
	if n != 2 {
		t.Fatalf("imputed %d entries, want 2", n)
	}
	if rmse > 1e-10 {
		t.Fatalf("exact recovery failed: rmse = %v", rmse)
	}
	// Observed entries untouched.
	for i := range rec {
		if !missing[i] && rec[i] != sample[i] {
			t.Fatal("observed entry modified")
		}
	}
}

func TestSubspaceImputeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	basis, _ := Basis(lowRankMatrix(rng, 5, 10, 2, 0), 2)
	if _, err := SubspaceImpute(basis, []float64{1, 2}, []bool{false, false}); err == nil {
		t.Fatal("expected length error")
	}
	allMissing := make([]bool, 5)
	for i := range allMissing {
		allMissing[i] = true
	}
	if _, err := SubspaceImpute(basis, make([]float64, 5), allMissing); err != ErrNoObservations {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
	// Nothing missing: identity.
	x := []float64{1, 2, 3, 4, 5}
	out, err := SubspaceImpute(basis, x, make([]bool, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Fatal("complete sample must pass through unchanged")
		}
	}
}

func TestCompleteRecoversLowRank(t *testing.T) {
	// ALS completion is a biconvex heuristic: it can stall at non-global
	// stationary points, so exact recovery of every entry is not
	// guaranteed even on noiseless rank-2 data — which is precisely the
	// imperfect-recovery behaviour the paper holds against
	// recover-then-classify pipelines. The test asserts the realistic
	// contract: small RMS error relative to the data scale.
	rng := rand.New(rand.NewSource(4))
	d, tt, r := 12, 20, 2
	truth := lowRankMatrix(rng, d, tt, r, 0)
	x := truth.Clone()
	missing := make([][]bool, d)
	dropped := 0
	for i := range missing {
		missing[i] = make([]bool, tt)
		for j := range missing[i] {
			if rng.Float64() < 0.10 {
				missing[i][j] = true
				x.Set(i, j, 0)
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Fatal("test needs missing entries")
	}
	rec, err := Complete(x, missing, CompleteOptions{Rank: r, Iters: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for i := 0; i < d; i++ {
		for j := 0; j < tt; j++ {
			if !missing[i][j] {
				if rec.At(i, j) != x.At(i, j) {
					t.Fatal("observed entry modified")
				}
				continue
			}
			dd := rec.At(i, j) - truth.At(i, j)
			sum += dd * dd
			n++
		}
	}
	rmse := math.Sqrt(sum / float64(n))
	// Data entries are ~N(0, 2): recovered values must carry real
	// information (far below the ~1.4 std of blind guessing).
	if rmse > 0.15 {
		t.Fatalf("completion rmse %v too large", rmse)
	}
	t.Logf("completion rmse over %d missing entries: %.4f", n, rmse)
}

func TestCompleteObservedResidualZero(t *testing.T) {
	// Whatever the pattern, the returned completion must fit the
	// observed entries of an exactly low-rank matrix (the factorisation
	// reproduces them even though they are returned verbatim).
	rng := rand.New(rand.NewSource(4))
	d, tt, r := 12, 20, 2
	truth := lowRankMatrix(rng, d, tt, r, 0)
	x := truth.Clone()
	missing := make([][]bool, d)
	for i := range missing {
		missing[i] = make([]bool, tt)
		for j := range missing[i] {
			if rng.Float64() < 0.25 {
				missing[i][j] = true
				x.Set(i, j, 0)
			}
		}
	}
	rec, err := Complete(x, missing, CompleteOptions{Rank: r, Iters: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Recovered entries stay bounded by the scale of the data — a
	// diverged factorisation would blow up here.
	for i := 0; i < d; i++ {
		for j := 0; j < tt; j++ {
			if math.Abs(rec.At(i, j)) > 100 {
				t.Fatalf("completion diverged at (%d,%d): %v", i, j, rec.At(i, j))
			}
		}
	}
}

func TestCompleteValidation(t *testing.T) {
	x := mat.NewDense(2, 3)
	if _, err := Complete(x, [][]bool{{true, true, true}}, CompleteOptions{}); err == nil {
		t.Fatal("expected mask shape error")
	}
	m := [][]bool{{true, true, true}, {true, true, true}}
	if _, err := Complete(x, m, CompleteOptions{}); err != ErrNoObservations {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
	bad := [][]bool{{true}, {true, true, true}}
	if _, err := Complete(x, bad, CompleteOptions{}); err == nil {
		t.Fatal("expected ragged mask error")
	}
}

func TestCompleteFullyObservedIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := lowRankMatrix(rng, 4, 5, 2, 0.01)
		missing := make([][]bool, 4)
		for i := range missing {
			missing[i] = make([]bool, 5)
		}
		rec, err := Complete(x, missing, CompleteOptions{Rank: 2, Iters: 3})
		if err != nil {
			return false
		}
		return rec.Equalf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestImputeErrorEmpty(t *testing.T) {
	rmse, n := ImputeError([]float64{1}, []float64{2}, []bool{false})
	if rmse != 0 || n != 0 {
		t.Fatal("no imputed entries must give zero error")
	}
}
