// Package pmuoutage is golden-test input for the apierr analyzer (the
// analyzer keys on the facade's package name, so this fixture borrows
// it).
package pmuoutage

import (
	"errors"
	"fmt"
)

// ErrBad is a proper package-level sentinel: clean.
var ErrBad = errors.New("pmuoutage: bad input")

// Wrapped adds detail around a sentinel: clean.
func Wrapped(n int) error {
	return fmt.Errorf("%w: value %d out of range", ErrBad, n)
}

// Bare returns a string error from an exported function: flagged.
func Bare(n int) error {
	return fmt.Errorf("value %d out of range", n) // want `exported function Bare returns fmt.Errorf without wrapping a sentinel`
}

// System carries the method cases.
type System struct{ n int }

// Check is an exported method returning a bare error: flagged.
func (s *System) Check() error {
	if s.n < 0 {
		return fmt.Errorf("negative size %d", s.n) // want `exported function Check returns fmt.Errorf without wrapping a sentinel`
	}
	return nil
}

// Validate builds its error inside a closure — still the exported
// function's error: flagged.
func (s *System) Validate() error {
	check := func() error {
		return fmt.Errorf("validation failed for %d", s.n) // want `exported function Validate returns fmt.Errorf without wrapping a sentinel`
	}
	return check()
}

// Inline mints a one-off dynamic error: flagged even though the format
// question never arises.
func Inline() error {
	return errors.New("something went wrong") // want `errors.New inside function Inline builds a one-off error`
}

// helper is unexported, so bare detail strings are fine: clean.
func helper(n int) error {
	return fmt.Errorf("internal detail %d", n)
}

// helperNew is unexported but errors.New is still a sentinel smell:
// flagged.
func helperNew() error {
	return errors.New("unmatchable") // want `errors.New inside function helperNew builds a one-off error`
}

// NonConstant formats cannot prove the absence of %w: clean.
func NonConstant(format string, err error) error {
	return fmt.Errorf(format, err)
}

// Uses keeps everything referenced.
func Uses() error {
	s := &System{n: -1}
	if err := s.Check(); err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if err := helper(1); err != nil {
		return err
	}
	if err := helperNew(); err != nil {
		return err
	}
	if err := NonConstant("x %v", Inline()); err != nil {
		return err
	}
	return Bare(2)
}
