package subspace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pmuoutage/internal/mat"
)

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	a := mat.NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}

// TestExtendFromZeroEqualsOrthonormalize pins the compatibility
// contract: the rank-one update chain seeded from the zero subspace is
// bit-identical to a one-shot orthonormalisation, which is what keeps
// the Union refactor byte-stable against trained models.
func TestExtendFromZeroEqualsOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{8, 3}, {20, 7}, {5, 9}} {
		x := randDense(rng, dims[0], dims[1])
		ext, err := Zero(dims[0]).Extend(x)
		if err != nil {
			t.Fatal(err)
		}
		want := mat.Orthonormalize(x)
		if !reflect.DeepEqual(ext.Basis(), want) {
			t.Fatalf("%v: Extend from zero differs from Orthonormalize", dims)
		}
	}
}

// TestExtendKeepsBasisVerbatim: the existing basis columns must pass
// through untouched — re-normalising them would perturb every stored
// model the patch path touches — and the extended basis must stay
// orthonormal.
func TestExtendKeepsBasisVerbatim(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := Learn(randDense(rng, 12, 4), 3)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := s.Extend(randDense(rng, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Rank() != s.Rank()+2 {
		t.Fatalf("rank %d after extending rank %d by 2 independent directions", ext.Rank(), s.Rank())
	}
	for j := 0; j < s.Rank(); j++ {
		if !reflect.DeepEqual(s.Basis().Col(j), ext.Basis().Col(j)) {
			t.Fatalf("existing basis column %d changed", j)
		}
	}
	b := ext.Basis()
	g := b.T().Mul(b)
	for i := 0; i < ext.Rank(); i++ {
		for j := 0; j < ext.Rank(); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-12 {
				t.Fatalf("gram[%d][%d] = %g, basis not orthonormal", i, j, g.At(i, j))
			}
		}
	}
}

// TestExtendDependentAddsNothing: vectors already inside the span must
// be dropped by the dependence tolerance, leaving the subspace equal.
func TestExtendDependentAddsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := Learn(randDense(rng, 10, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Random combinations of the basis columns: inside the span.
	inside := mat.NewDense(10, 3)
	for j := 0; j < 3; j++ {
		v := make([]float64, 10)
		for c := 0; c < s.Rank(); c++ {
			w := rng.NormFloat64()
			col := s.Basis().Col(c)
			for i := range v {
				v[i] += w * col[i]
			}
		}
		inside.SetCol(j, v)
	}
	ext, err := s.Extend(inside)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ext.Basis(), s.Basis()) {
		t.Fatal("extending with contained vectors changed the basis")
	}
}

func TestExtendDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Zero(5).Extend(randDense(rng, 6, 1)); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}
