GO ?= go

.PHONY: build vet lint lint-report test race bench bench-full bench-serve bench-serve-smoke serve-smoke serve-fleet-smoke smoke-scale soak-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gridlint: the repo's own analyzers (cmd/gridlint, internal/analysis).
# Suppress an intentional finding with
#   //gridlint:ignore <analyzer> <reason>
lint:
	$(GO) run ./cmd/gridlint ./...

# Machine-readable lint report (suppressed findings included, with the
# reasons that silence them). CI uploads this as an artifact. The target
# always writes gridlint.json but still fails on error-tier findings.
lint-report:
	$(GO) run ./cmd/gridlint -json ./... > gridlint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark smoke: catches benchmarks that panic or no
# longer compile without paying for stable timings. The pipeline benches
# additionally run at -cpu 1,4 (sequential vs parallel, identical
# output), and benchpipeline writes the timings to BENCH_pipeline.json.
# The telemetry hot path (histogram observe, counter inc, trace-ID mint)
# gets enough iterations for a readable ns/op, since its whole contract
# is "cheap enough to leave on".
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run='^$$' -bench=Pipeline -benchtime=1x -cpu 1,4 .
	$(GO) test -run='^$$' -bench='Histogram|CounterInc|NewTraceID' -benchtime=10000x ./internal/obs
	$(GO) run ./cmd/benchpipeline -o BENCH_pipeline.json

# Full benchmark including the 1000-bus power-flow scaling rows (the
# synth1000 grid alone takes ~30 s to build, so verify runs the plain
# bench target instead). This is what the committed BENCH_pipeline.json
# is produced with.
bench-full:
	$(GO) run ./cmd/benchpipeline -full -o BENCH_pipeline.json

# Serving benchmark: open-loop QPS tiers against the real HTTP handler
# in both ingest modes (JSON and binary wire frames), plus the ingress
# decode comparison. Writes BENCH_serve.json; the smoke variant runs one
# abbreviated tier and skips the file, but still asserts the binary
# decode is allocation-free and at least 2x faster than JSON.
bench-serve:
	$(GO) run ./cmd/benchserve -o BENCH_serve.json

bench-serve-smoke:
	$(GO) run ./cmd/benchserve -smoke

# Serving smoke: boot cmd/outaged on an ephemeral port with one fast
# shard, round-trip a detect request over real HTTP (via the client
# package), check it against the direct library answer, hot-reload the
# shard through POST /v1/reload (generation must bump, fingerprint must
# match, answers must stay byte-identical), and require a clean
# graceful shutdown.
serve-smoke:
	$(GO) run ./cmd/outaged -smoke

# Scale smoke: the serve-smoke flow on the 300-bus synthetic grid —
# trains synth300 over the sparse power-flow path (short DC window),
# serves it over real HTTP, and hot-reloads it. This is the check that
# the sparse numerics stack works end to end at scale, not just in
# unit tests.
smoke-scale:
	$(GO) run ./cmd/outaged -smoke -smoke-case synth300 -smoke-steps 8

# Fleet smoke: an in-process fleet — model registry, two primary
# backends booted by fingerprint, one canary backend, the router in
# full-shadow mode — driven over real HTTP. Asserts byte-identical
# proxying, fail-over with one backend killed mid-stream (zero dropped
# detects), shadow responses byte-identical to the primary's, a 304
# conditional registry pull, and a gated canary promotion.
serve-fleet-smoke:
	$(GO) run ./cmd/outagerouter -smoke

# Churn soak smoke: an in-process fleet (registry, two traced backends,
# the traced router) under mixed detect + binary-ingest load while the
# harness injects churn — rolling reloads, a patch broadcast, an abrupt
# backend kill and restart. Writes SOAK_report.json (per-tick isolation
# accuracy, false-alarm rate, per-stage p50/p95/p99, availability, the
# slowest retained traces and one merged multi-hop trace) and asserts
# zero client-visible errors and >= 0.9 isolation accuracy throughout.
soak-smoke:
	$(GO) run ./cmd/outagesoak -smoke

# The tier-1 gate (see ROADMAP.md): build, vet, gridlint, race tests,
# benchmark smoke.
verify: build vet lint race bench bench-serve-smoke serve-smoke smoke-scale serve-fleet-smoke soak-smoke
