package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/api"
)

// stubBackend mimics outaged's HTTP surface with a canned detect
// answer, so router behavior is tested without training models.
type stubBackend struct {
	ts      *httptest.Server
	detects atomic.Uint64
	reply   func() (int, []byte) // nil: the default healthy answer
}

// stubReports is the canned detect payload every healthy stub serves.
func stubReports(energy float64) []byte {
	body, err := json.Marshal(api.DetectResponse{
		Shard: "east",
		Reports: []*pmuoutage.Report{{
			Outage:          true,
			Lines:           []pmuoutage.Line{{Index: 3, FromBus: 1, ToBus: 4}},
			DeviationEnergy: energy,
		}},
	})
	if err != nil {
		panic(err)
	}
	return body
}

func newStubBackend(t *testing.T, reply func() (int, []byte)) *stubBackend {
	t.Helper()
	b := &stubBackend{reply: reply}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{{Name: "east", State: "ready", QueueDepth: 0}})
	})
	mux.HandleFunc("POST /v1/detect", func(w http.ResponseWriter, r *http.Request) {
		b.detects.Add(1)
		status, body := http.StatusOK, stubReports(1.5)
		if b.reply != nil {
			status, body = b.reply()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(body)
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"query": r.URL.RawQuery,
			"ct":    r.Header.Get("Content-Type"),
			"len":   string(rune('0' + len(body)%10)),
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 10 * time.Millisecond
	}
	rt, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Routes())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postDetect(t *testing.T, base string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/detect",
		strings.NewReader(`{"shard":"east","samples":[{"vm":[1],"va":[0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFailoverMidStream is the acceptance case: a fleet of two
// backends, one killed while detect traffic is in flight, and not one
// request is dropped — the router retries transport failures on the
// surviving backend.
func TestFailoverMidStream(t *testing.T) {
	b1 := newStubBackend(t, nil)
	b2 := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b1.ts.URL, b2.ts.URL}})

	want := stubReports(1.5)
	wantLF := append(append([]byte(nil), want...), '\n')
	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := make(chan struct{})
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, body := postDetect(t, ts.URL, nil)
			if resp.StatusCode != http.StatusOK || !bytes.Equal(body, wantLF) && !bytes.Equal(body, want) {
				failed.Add(1)
			}
		}()
	}
	close(start)
	// Kill b1 abruptly while requests are in flight: open connections are
	// dropped, which the router must absorb as fail-over, not errors.
	b1.ts.CloseClientConnections()
	b1.ts.Close()
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of 40 in-flight detects dropped during backend kill", n)
	}
	if b2.detects.Load() == 0 {
		t.Fatal("surviving backend served no traffic")
	}
}

// TestShadowByteIdentical pins the canary contract: with an identical
// candidate every shadow pair compares byte-identical, the scenario
// deltas are zero, and the report is promotable.
func TestShadowByteIdentical(t *testing.T) {
	prim := newStubBackend(t, nil)
	can := newStubBackend(t, nil)
	rt, ts := newTestRouter(t, Config{
		Backends:       []string{prim.ts.URL},
		CanaryBackends: []string{can.ts.URL},
		Candidate:      "cafe",
		CanaryPercent:  100,
		MinPairs:       5,
	})

	headers := map[string]string{
		api.EvalScenarioHeader: "outage-3",
		api.EvalTruthHeader:    "3",
	}
	for i := 0; i < 8; i++ {
		resp, _ := postDetect(t, ts.URL, headers)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d: HTTP %d", i, resp.StatusCode)
		}
	}
	rt.Differ().DrainShadow()
	rep := rt.Differ().Report()
	if rep.Pairs != 8 || rep.Identical != 8 || rep.Mismatched != 0 {
		t.Fatalf("pairs=%d identical=%d mismatched=%d, want 8/8/0", rep.Pairs, rep.Identical, rep.Mismatched)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(rep.Scenarios))
	}
	sd := rep.Scenarios[0]
	if sd.Scenario != "outage-3" || sd.DeltaIA != 0 || sd.DeltaFA != 0 {
		t.Fatalf("scenario diff = %+v, want zero deltas for outage-3", sd)
	}
	if sd.Primary.IA != 1 {
		t.Fatalf("primary IA = %v, want 1 (stub always identifies line 3)", sd.Primary.IA)
	}
	if !rep.Promotable {
		t.Fatalf("identical candidate not promotable: %v", rep.Reasons)
	}
	if can.detects.Load() != 8 {
		t.Fatalf("canary served %d detects, want 8 (full shadow)", can.detects.Load())
	}
}

// TestCanaryGatesBlockPromotion drives a canary that misidentifies the
// outage (IA regression) and asserts both the report verdict and the
// promote endpoint's 409 with the stable promotion_blocked code.
func TestCanaryGatesBlockPromotion(t *testing.T) {
	prim := newStubBackend(t, nil)
	wrong := func() (int, []byte) {
		body, _ := json.Marshal(api.DetectResponse{
			Shard:   "east",
			Reports: []*pmuoutage.Report{{Outage: true, Lines: []pmuoutage.Line{{Index: 9}}, DeviationEnergy: 1.5}},
		})
		return http.StatusOK, body
	}
	can := newStubBackend(t, wrong)
	_, ts := newTestRouter(t, Config{
		Backends:       []string{prim.ts.URL},
		CanaryBackends: []string{can.ts.URL},
		Candidate:      "cafe",
		CanaryPercent:  100,
		MinPairs:       1,
	})

	headers := map[string]string{api.EvalScenarioHeader: "outage-3", api.EvalTruthHeader: "3"}
	for i := 0; i < 4; i++ {
		postDetect(t, ts.URL, headers)
	}
	resp, err := http.Post(ts.URL+"/v1/canary/promote", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote of regressing canary: HTTP %d, want 409", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	env, ok := api.DecodeError(body)
	if !ok || env.Code != api.CodePromotionBlocked {
		t.Fatalf("promote error code = %q (ok=%v), want %q", env.Code, ok, api.CodePromotionBlocked)
	}
}

// TestIngestProxyPreservesQuery pins the binary-ingest contract: the
// router forwards the query string and content type untouched.
func TestIngestProxyPreservesQuery(t *testing.T) {
	b := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest?shard=east", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-pmu-frame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var got map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["query"] != "shard=east" {
		t.Fatalf("backend saw query %q, want shard=east", got["query"])
	}
	if got["ct"] != "application/x-pmu-frame" {
		t.Fatalf("backend saw content type %q", got["ct"])
	}
}

// TestErrorRelayedByteIdentical pins that a terminal backend error —
// status, code, body — reaches the caller exactly as the backend wrote
// it, so router and backend are indistinguishable to clients.
func TestErrorRelayedByteIdentical(t *testing.T) {
	errBody, _ := json.Marshal(api.ErrorEnvelope{Code: api.CodeUnknownShard, Error: "no shard west"})
	b := newStubBackend(t, func() (int, []byte) { return http.StatusNotFound, errBody })
	_, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}})

	resp, body := postDetect(t, ts.URL, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404 relayed", resp.StatusCode)
	}
	if !bytes.Equal(body, errBody) {
		t.Fatalf("relayed error body %q differs from backend's %q", body, errBody)
	}
	env, ok := api.DecodeError(body)
	if !ok || env.Code != api.CodeUnknownShard {
		t.Fatalf("relayed code = %q, want unknown_shard", env.Code)
	}
	// A terminal error must not trip fail-over accounting: one backend,
	// one attempt.
	if n := b.detects.Load(); n != 1 {
		t.Fatalf("backend saw %d detect calls, want 1 (no retry on terminal error)", n)
	}
}

// TestEjectionAndReadmission watches the prober's lifecycle: a backend
// that dies is ejected (healthz flips), and readmitted once it
// answers again.
func TestEjectionAndReadmission(t *testing.T) {
	mux := http.NewServeMux()
	var down atomic.Bool
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rt, _ := newTestRouter(t, Config{Backends: []string{ts.URL}, ProbeEvery: 5 * time.Millisecond})
	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if rt.primary.backends[0].healthy.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend healthy != %v within deadline", want)
	}
	waitHealthy(true)
	down.Store(true)
	waitHealthy(false)
	if rt.primary.backends[0].ejections.Load() == 0 {
		t.Fatal("ejection not counted")
	}
	down.Store(false)
	waitHealthy(true)
}
