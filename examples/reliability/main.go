// Reliability: sweep the system-wide PMU network reliability level of
// the paper's Fig. 10 (Eqs. 13–15). Every PMU and its PDC link fail
// independently; the detector sees whatever survives. The effective
// false-alarm rate should stay small across realistic reliability
// levels — unreliable telemetry must not read as grid failures.
package main

import (
	"fmt"
	"log"

	"pmuoutage"
)

func main() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 40,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}

	const perLevel = 40 // Monte Carlo draws per reliability level
	fmt.Println("PMU network reliability sweep (IEEE 14-bus, normal operation + outages)")
	fmt.Printf("%-12s %-10s %-10s %-12s\n", "reliability", "IA", "FA", "avg missing")
	for _, r := range []float64{0.80, 0.85, 0.90, 0.95, 0.99} {
		var iaSum, faSum float64
		var missingTotal, n int
		seed := int64(r * 100000)

		// Normal-operation samples: any detected line is a false alarm.
		normals, err := sys.SimulateOutage(nil, perLevel/2)
		if err != nil {
			log.Fatal(err)
		}
		for k, smp := range normals {
			miss, err := sys.DrawMissing(r, seed+int64(k))
			if err != nil {
				log.Fatal(err)
			}
			missingTotal += len(miss)
			rep, err := sys.Detect(smp.WithMissing(miss...))
			if err != nil {
				log.Fatal(err)
			}
			n++
			if rep.Outage {
				faSum++
			} else {
				iaSum++
			}
		}
		// Outage samples: the true line must survive the missing data.
		for k := 0; k < perLevel/2; k++ {
			target := sys.ValidLines()[k%len(sys.ValidLines())]
			samples, err := sys.SimulateOutage([]int{target}, 1)
			if err != nil {
				log.Fatal(err)
			}
			miss, err := sys.DrawMissing(r, seed+1000+int64(k))
			if err != nil {
				log.Fatal(err)
			}
			missingTotal += len(miss)
			rep, err := sys.Detect(samples[0].WithMissing(miss...))
			if err != nil {
				log.Fatal(err)
			}
			n++
			hit, extra := false, 0
			for _, l := range rep.Lines {
				if l.Index == target {
					hit = true
				} else {
					extra++
				}
			}
			if hit {
				iaSum++
			}
			if len(rep.Lines) > 0 {
				faSum += float64(extra) / float64(len(rep.Lines))
			}
		}
		fmt.Printf("%-12.2f %-10.3f %-10.3f %-12.2f\n",
			r, iaSum/float64(n), faSum/float64(n), float64(missingTotal)/float64(n))
	}
	fmt.Println()
	fmt.Println("Full Monte Carlo version over all systems: go run ./cmd/experiments fig10")
}
