package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pmuoutage"
)

// State is a shard's lifecycle position.
type State int

const (
	// StateTraining: the supervisor is building the shard's system.
	StateTraining State = iota
	// StateReady: the shard is serving.
	StateReady
	// StateFailed: training failed or the shard was killed; the
	// supervisor will rebuild it after its backoff.
	StateFailed
	// StateStopped: the service is closed.
	StateStopped
)

// String renders the state for status listings and JSON.
func (s State) String() string {
	switch s {
	case StateTraining:
		return "training"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	default:
		return "stopped"
	}
}

// queueCap is the hard capacity of every per-shard request queue. The
// soft, sample-counted shed bound is Config.QueueDepth; this constant
// only backstops it so the channel's make site stays auditable.
const queueCap = 256

// request is one queued detect call.
type request struct {
	ctx     context.Context
	samples []pmuoutage.Sample
	done    chan response // buffered(1): the batcher never blocks on delivery
}

type response struct {
	reports []*pmuoutage.Report
	err     error
}

// shard is one trained system plus its queue, batcher, and supervisor
// state.
type shard struct {
	svc  *Service
	spec ShardSpec

	reqs  chan *request
	depth atomic.Int64 // samples admitted but not yet answered

	mu    sync.Mutex
	state State
	err   error // last failure while StateFailed
	sys   *pmuoutage.System
	mon   *pmuoutage.Monitor
	killc chan struct{} // closed by kill to stop the current serve loop
}

func newShard(svc *Service, spec ShardSpec) *shard {
	return &shard{
		svc:  svc,
		spec: spec,
		reqs: make(chan *request, queueCap),
	}
}

// supervise is the shard's lifecycle loop: train, serve until killed,
// back off, rebuild. Training failures retry with exponential backoff
// (reset after every healthy start); ctx cancellation stops everything.
func (sh *shard) supervise(ctx context.Context) {
	defer sh.svc.wg.Done()
	defer sh.stop()
	backoff := sh.svc.cfg.RestartBackoff
	for ctx.Err() == nil {
		sh.setTraining()
		sys, err := pmuoutage.NewSystemContext(ctx, sh.spec.Opts)
		if err == nil {
			var mon *pmuoutage.Monitor
			mon, err = sys.NewMonitor(sh.svc.cfg.Confirm, sh.svc.cfg.Cooldown)
			if err == nil {
				killc := make(chan struct{})
				sh.activate(sys, mon, killc)
				backoff = sh.svc.cfg.RestartBackoff
				sh.serve(ctx, killc)
				if ctx.Err() != nil {
					return
				}
				// Killed: fall through to the backoff-and-rebuild path.
			}
		}
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			sh.fail(fmt.Errorf("%w: %q training failed: %v", ErrUnavailable, sh.spec.Name, err))
		}
		sh.counters().Restarts.Add(1)
		if !sleep(ctx, backoff) {
			return
		}
		backoff = nextBackoff(backoff, sh.svc.cfg.MaxRestartBackoff)
	}
}

// serve is one shard incarnation's batch loop: pop the next request,
// coalesce whatever else is already queued up to MaxBatch samples, run
// one detector batch, and deliver each request its slice.
func (sh *shard) serve(ctx context.Context, killc chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-killc:
			sh.drainQueue(sh.availErr())
			return
		case req := <-sh.reqs:
			sh.runBatch(ctx, sh.coalesce(req))
		}
	}
}

// coalesce greedily drains already-queued requests behind first until
// the batch reaches MaxBatch samples. It never waits: latency of the
// first request is never spent fishing for company.
func (sh *shard) coalesce(first *request) []*request {
	batch := []*request{first}
	total := len(first.samples)
	for total < sh.svc.cfg.MaxBatch {
		select {
		case req := <-sh.reqs:
			batch = append(batch, req)
			total += len(req.samples)
		default:
			return batch
		}
	}
	return batch
}

// runBatch executes one coalesced batch. Requests whose deadline
// already expired are answered with their context error without
// spending detector time. If the combined batch fails (one request's
// malformed sample must not fail its neighbours), it falls back to one
// detector call per request so each gets exactly its own outcome.
func (sh *shard) runBatch(ctx context.Context, batch []*request) {
	var live []*request
	var samples []pmuoutage.Sample
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			sh.respond(req, response{err: err})
			continue
		}
		live = append(live, req)
		samples = append(samples, req.samples...)
	}
	if len(live) == 0 {
		return
	}
	sys := sh.system()
	if sys == nil { // killed between pop and run
		for _, req := range live {
			sh.respond(req, response{err: sh.availErr()})
		}
		return
	}
	if hook := sh.svc.cfg.batchHook; hook != nil {
		hook(sh.spec.Name, len(samples))
	}
	start := time.Now()
	reports, err := sys.DetectBatchContext(ctx, samples)
	sh.counters().observeBatch(len(samples), time.Since(start))
	if err != nil {
		for _, req := range live {
			r, rerr := sys.DetectBatchContext(req.ctx, req.samples)
			sh.respond(req, response{reports: r, err: rerr})
		}
		return
	}
	off := 0
	for _, req := range live {
		n := len(req.samples)
		sh.respond(req, response{reports: reports[off : off+n : off+n]})
		off += n
	}
}

// detect admits one request: shed if over the queue bound, enqueue,
// then wait for the batcher's response or the caller's deadline.
func (sh *shard) detect(ctx context.Context, samples []pmuoutage.Sample) ([]*pmuoutage.Report, error) {
	st := sh.counters()
	st.Requests.Add(1)
	if err := sh.availErr(); err != nil {
		st.Unavailable.Add(1)
		return nil, err
	}
	n := int64(len(samples))
	if d := sh.depth.Add(n); d > int64(sh.svc.cfg.QueueDepth) {
		sh.depth.Add(-n)
		st.Shed.Add(1)
		return nil, fmt.Errorf("%w: shard %q has %d samples pending (bound %d); retry later",
			ErrOverloaded, sh.spec.Name, d-n, sh.svc.cfg.QueueDepth)
	}
	req := &request{ctx: ctx, samples: samples, done: make(chan response, 1)}
	select {
	case sh.reqs <- req:
	default:
		sh.depth.Add(-n)
		st.Shed.Add(1)
		return nil, fmt.Errorf("%w: shard %q request queue is full; retry later", ErrOverloaded, sh.spec.Name)
	}
	select {
	case resp := <-req.done:
		return resp.reports, resp.err
	case <-ctx.Done():
		// The batcher still answers the buffered channel and settles the
		// depth accounting; only this caller stops waiting.
		return nil, ctx.Err()
	case <-sh.svc.ctx.Done():
		return nil, ErrClosed
	}
}

// ingest scores one sample on the shard's streaming monitor; the mutex
// serialises the monitor's streak state.
func (sh *shard) ingest(ctx context.Context, sample pmuoutage.Sample) (*pmuoutage.Event, error) {
	sh.counters().Ingests.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != StateReady {
		sh.counters().Unavailable.Add(1)
		return nil, sh.availErrLocked()
	}
	return sh.mon.Ingest(sample)
}

// respond delivers one response and settles the shard's depth gauge.
func (sh *shard) respond(req *request, resp response) {
	req.done <- resp
	sh.depth.Add(-int64(len(req.samples)))
}

// drainQueue answers everything currently queued with err.
func (sh *shard) drainQueue(err error) {
	for {
		select {
		case req := <-sh.reqs:
			sh.respond(req, response{err: err})
		default:
			return
		}
	}
}

// kill fails the current incarnation: the serve loop exits, queued
// requests are answered with a retryable error, and the supervisor
// rebuilds the shard after its backoff. No-op unless the shard is
// ready.
func (sh *shard) kill(cause error) {
	if killc := sh.takeKill(cause); killc != nil {
		close(killc)
	}
}

func (sh *shard) takeKill(cause error) chan struct{} {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != StateReady {
		return nil
	}
	sh.state = StateFailed
	sh.err = cause
	sh.sys, sh.mon = nil, nil
	killc := sh.killc
	sh.killc = nil
	return killc
}

func (sh *shard) setTraining() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateTraining
	sh.err = nil
}

func (sh *shard) activate(sys *pmuoutage.System, mon *pmuoutage.Monitor, killc chan struct{}) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateReady
	sh.err = nil
	sh.sys, sh.mon, sh.killc = sys, mon, killc
}

func (sh *shard) fail(err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateFailed
	sh.err = err
	sh.sys, sh.mon = nil, nil
}

// stop marks the shard stopped and fails everything still queued; runs
// once, when the supervisor exits.
func (sh *shard) stop() {
	sh.setStopped()
	sh.drainQueue(ErrClosed)
}

func (sh *shard) setStopped() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateStopped
	sh.sys, sh.mon, sh.killc = nil, nil, nil
}

// system returns the serving system, or nil while not ready.
func (sh *shard) system() *pmuoutage.System {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sys
}

// availErr returns nil when the shard is serving, otherwise the typed
// reason it cannot answer.
func (sh *shard) availErr() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state == StateReady {
		return nil
	}
	return sh.availErrLocked()
}

func (sh *shard) availErrLocked() error {
	switch sh.state {
	case StateReady:
		return nil
	case StateTraining:
		return fmt.Errorf("%w: shard %q is training; retry later", ErrUnavailable, sh.spec.Name)
	case StateFailed:
		if sh.err != nil {
			return sh.err
		}
		return fmt.Errorf("%w: shard %q failed; restarting", ErrUnavailable, sh.spec.Name)
	default:
		return ErrClosed
	}
}

// status snapshots the shard for listings.
func (sh *shard) status() ShardStatus {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := ShardStatus{
		Name:       sh.spec.Name,
		Case:       sh.spec.Opts.Case,
		State:      sh.state.String(),
		Restarts:   sh.counters().Restarts.Load(),
		QueueDepth: int(sh.depth.Load()),
	}
	if st.Case == "" {
		st.Case = "ieee14" // the facade default
	}
	if sh.err != nil {
		st.Err = sh.err.Error()
	}
	if sh.sys != nil {
		st.Buses = sh.sys.Buses()
		st.Lines = len(sh.sys.Lines())
	}
	return st
}

// counters returns the shard's stats cell.
func (sh *shard) counters() *ShardCounters {
	return sh.svc.stats.shard(sh.spec.Name)
}

// sleep waits d or until ctx cancels, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// nextBackoff doubles a delay up to the bound.
func nextBackoff(d, bound time.Duration) time.Duration {
	d *= 2
	if d > bound {
		d = bound
	}
	return d
}
