package analysis

import (
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"strings"
)

// Expand resolves gridlint command-line patterns to package directories.
// A trailing "/..." walks recursively; anything else names one directory.
// testdata, hidden, and underscore-prefixed directories are skipped, as
// are directories with no buildable non-test Go files — the same shape
// the go tool gives "./...".
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if abs, err := filepath.Abs(dir); err == nil && !seen[abs] {
			seen[abs] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		root, rec := strings.CutSuffix(pat, "/...")
		if root == "" || root == "." {
			root = "."
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.hasBuildableGo(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: expanding %q: %w", pat, err)
		}
	}
	return out, nil
}

// hasBuildableGo reports whether dir contains at least one non-test Go
// file that survives build-constraint filtering.
func (l *Loader) hasBuildableGo(dir string) bool {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if ok := errorsAs(err, &noGo); ok {
			return false
		}
		return false
	}
	return len(bp.GoFiles) > 0
}

// errorsAs is a tiny local stand-in to avoid importing errors just for
// one call site with a concrete target type.
func errorsAs[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// RunDirs loads every directory and runs the analyzers over each
// package, returning unsuppressed, sorted diagnostics. Loading or
// type-checking failures abort the run: gridlint gates a repo that is
// expected to compile.
func RunDirs(l *Loader, analyzers []*Analyzer, dirs []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		d, err := RunPackage(analyzers, pkg, l.modPath)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage runs the analyzers over one loaded package and applies
// //gridlint:ignore suppression, returning only the unsuppressed
// findings. module is the module path used to classify imports as
// repo-internal (empty disables that check).
func RunPackage(analyzers []*Analyzer, pkg *Package, module string) ([]Diagnostic, error) {
	diags, err := RunPackageAll(analyzers, pkg, module)
	if err != nil {
		return nil, err
	}
	return unsuppressed(diags), nil
}

// RunPackageAll is RunPackage keeping suppressed findings in the result
// (marked, with the suppressing directive's reason) — the source of the
// machine-readable report. When the ignoreaudit analyzer is among the
// selected analyzers it additionally audits the suppression ledger for
// staleness: a directive that suppressed nothing, naming an analyzer
// that actually ran (or "all"), is itself a finding. Directives naming
// ignoreaudit are exempt — they exist to suppress audit findings, which
// are produced after the match bookkeeping.
func RunPackageAll(analyzers []*Analyzer, pkg *Package, module string) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := map[string][]*ignoreDirective{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ignores[name] = parseIgnores(pkg.Fset, f, &diags)
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Pkg,
			Info:      pkg.Info,
			Module:    module,
			diags:     &diags,
		}
		if pkg.loader != nil {
			pass.PkgAST = pkg.loader.PkgAST
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	markSuppressed(diags, ignores)
	if ran[IgnoreAudit.Name] {
		stale := len(diags)
		for _, dirs := range ignores {
			for _, dir := range dirs {
				if dir.matched || dir.analyzer == IgnoreAudit.Name {
					continue
				}
				if dir.analyzer != "all" && !ran[dir.analyzer] {
					continue // audited by ignoreaudit.Run if unknown; not stale if simply deselected
				}
				diags = append(diags, Diagnostic{
					Pos:      dir.pos,
					Analyzer: IgnoreAudit.Name,
					Severity: IgnoreAudit.severity(),
					Message:  fmt.Sprintf("stale ignore directive: no %s finding here to suppress on the current tree", dir.analyzer),
				})
			}
		}
		markSuppressed(diags[stale:], ignores)
	}
	sortDiagnostics(diags)
	return diags, nil
}
