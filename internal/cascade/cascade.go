// Package cascade simulates the cascading-failure process that motivates
// the paper (§I, refs [2], [3]): an undetected line outage redistributes
// power flows, overloaded neighbours trip, and the grid can unravel
// island by island. The simulator uses DC power flow for redistribution
// (the standard model in the cascading-failure literature) and supports
// an intervention hook so experiments can quantify what timely outage
// detection buys: shedding load early stops the propagation.
package cascade

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/powerflow"
)

// Ratings holds per-line thermal limits in per-unit flow. The paper's
// test cases do not ship usable ratings, so Derive builds the standard
// synthetic ones: base-case flow times an overload margin, floored so
// lightly-loaded lines are not hair-triggers.
type Ratings []float64

// Derive computes ratings from the grid's base-case DC flows:
// rating_e = max(|flow_e| * margin, floor). A margin of 1.5–2 matches
// the N-1 planning practice assumed in cascading-failure studies.
func Derive(g *grid.Grid, margin, floor float64) (Ratings, error) {
	if margin <= 1 {
		return nil, fmt.Errorf("cascade: margin %v must exceed 1", margin)
	}
	if floor <= 0 {
		floor = 0.1
	}
	flows, err := Flows(g)
	if err != nil {
		return nil, err
	}
	r := make(Ratings, g.E())
	for e := range r {
		r[e] = math.Max(math.Abs(flows[e])*margin, floor)
	}
	return r, nil
}

// Flows returns the DC active-power flow on every branch (from→to
// positive), with zero for out-of-service branches. Mid-cascade grids
// can be islanded: flows are computed on the slack bus's component
// (de-energised islands carry no flow), so the function keeps working
// as the grid fragments.
func Flows(g *grid.Grid) ([]float64, error) {
	slack, err := g.SlackIndex()
	if err != nil {
		return nil, err
	}
	reach := reachable(g, slack)
	// Index map for the energised component, excluding the slack.
	idx := make([]int, 0, g.N())
	pos := make([]int, g.N())
	for i := range pos {
		pos[i] = -1
	}
	for i := 0; i < g.N(); i++ {
		if reach[i] && i != slack {
			pos[i] = len(idx)
			idx = append(idx, i)
		}
	}
	theta := make([]float64, g.N())
	if len(idx) > 0 {
		// Reduced Laplacian over the component.
		b := mat.NewDense(len(idx), len(idx))
		p := make([]float64, len(idx))
		for e := range g.Branches {
			br := &g.Branches[e]
			if !br.Status || br.X == 0 || !reach[br.From] { //gridlint:ignore floatcmp X==0 marks an unmodelled branch sentinel, never a computed reactance
				continue
			}
			w := 1 / br.X
			f, t := pos[br.From], pos[br.To]
			if f >= 0 {
				b.Add(f, f, w)
			}
			if t >= 0 {
				b.Add(t, t, w)
			}
			if f >= 0 && t >= 0 {
				b.Add(f, t, -w)
				b.Add(t, f, -w)
			}
		}
		for k, i := range idx {
			p[k] = g.Buses[i].Pg - g.Buses[i].Pd
		}
		sol, err := mat.Solve(b, p)
		if err != nil {
			return nil, fmt.Errorf("cascade: DC solve on energised component: %w", err)
		}
		for k, i := range idx {
			theta[i] = sol[k]
		}
	}
	out := make([]float64, g.E())
	for e := range g.Branches {
		br := &g.Branches[e]
		if !br.Status || br.X == 0 || !reach[br.From] || !reach[br.To] { //gridlint:ignore floatcmp X==0 marks an unmodelled branch sentinel, never a computed reactance
			continue
		}
		out[e] = (theta[br.From] - theta[br.To]) / br.X
	}
	return out, nil
}

// Step is one round of the cascade.
type Step struct {
	Round   int
	Tripped []grid.Line // lines that exceeded their rating this round
	Islands int         // connected components after the trips
	Served  float64     // fraction of initial load still served
}

// Result is a full cascade trajectory.
type Result struct {
	Steps []Step
	// Failed is every line lost after the initiating outage(s).
	Failed []grid.Line
	// ServedFraction is the final fraction of the initial load served.
	ServedFraction float64
	// Halted reports whether an intervention stopped the cascade.
	Halted bool
}

// Depth returns the number of propagation rounds after the trigger.
func (r *Result) Depth() int { return len(r.Steps) }

// Intervention is called after each round with the current round number
// and the grid state; returning true halts the cascade (modelling an
// operator action taken once the outage is detected and localised, e.g.
// targeted load shedding).
type Intervention func(round int, g *grid.Grid) bool

// Options configures a cascade run.
type Options struct {
	// MaxRounds caps the propagation (default 50).
	MaxRounds int
	// Intervene, when non-nil, can stop the cascade after a round.
	Intervene Intervention
	// LoadSheddingOnIslanding: when a component loses its slack (and so
	// its reference generation), its load counts as unserved. Always on;
	// this flag name documents the behaviour for API readers.
	LoadSheddingOnIslanding bool
}

// ErrNoTrigger is returned when the initiating set is empty.
var ErrNoTrigger = errors.New("cascade: empty trigger set")

// Run simulates a cascade on a copy of g triggered by the outage of the
// given lines, with per-line ratings (see Derive).
func Run(g *grid.Grid, ratings Ratings, trigger []grid.Line, opts Options) (*Result, error) {
	if len(trigger) == 0 {
		return nil, ErrNoTrigger
	}
	if len(ratings) != g.E() {
		return nil, fmt.Errorf("cascade: %d ratings for %d lines", len(ratings), g.E())
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 50
	}
	work := g.Clone()
	initialLoad := work.TotalLoad()
	if initialLoad <= 0 {
		return nil, fmt.Errorf("cascade: grid has no load")
	}
	res := &Result{}
	for _, e := range trigger {
		if int(e) < 0 || int(e) >= work.E() {
			return nil, fmt.Errorf("cascade: trigger line %d out of range %d", e, work.E())
		}
		work.Branches[e].Status = false
		res.Failed = append(res.Failed, e)
	}

	for round := 1; round <= opts.MaxRounds; round++ {
		served := shedIslands(work)
		flows, err := Flows(work)
		if err != nil {
			// A singular DC solve means the surviving system collapsed.
			res.ServedFraction = 0
			return res, nil
		}
		var tripped []grid.Line
		for e := range work.Branches {
			if !work.Branches[e].Status {
				continue
			}
			if math.Abs(flows[e]) > ratings[e] {
				tripped = append(tripped, grid.Line(e))
			}
		}
		servedFrac := served / initialLoad
		if len(tripped) == 0 {
			res.ServedFraction = servedFrac
			return res, nil
		}
		sort.Slice(tripped, func(a, b int) bool { return tripped[a] < tripped[b] })
		for _, e := range tripped {
			work.Branches[e].Status = false
		}
		res.Failed = append(res.Failed, tripped...)
		res.Steps = append(res.Steps, Step{
			Round: round, Tripped: tripped,
			Islands: countIslands(work), Served: servedFrac,
		})
		if opts.Intervene != nil && opts.Intervene(round, work) {
			res.Halted = true
			res.ServedFraction = shedIslands(work) / initialLoad
			return res, nil
		}
	}
	res.ServedFraction = shedIslands(work) / initialLoad
	return res, nil
}

// shedIslands disconnects load in components without the slack bus
// (they have lost their reference generation) and rebalances generation
// in the surviving component. It returns the served load in p.u.
func shedIslands(g *grid.Grid) float64 {
	slack, err := g.SlackIndex()
	if err != nil {
		return 0
	}
	reach := reachable(g, slack)
	var served float64
	for i := range g.Buses {
		if reach[i] {
			served += g.Buses[i].Pd
		} else {
			// Dead island: its load is unserved and its generation off.
			g.Buses[i].Pd = 0
			g.Buses[i].Qd = 0
			g.Buses[i].Pg = 0
		}
	}
	// Rebalance generation to the surviving load (lossless DC).
	*g = *powerflow.Dispatch(g, 0)
	return served
}

func reachable(g *grid.Grid, src int) []bool {
	n := g.N()
	seen := make([]bool, n)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

func countIslands(g *grid.Grid) int {
	n := g.N()
	seen := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return count
}

// ShedLoad returns an Intervention that sheds the given fraction of
// every remaining load after the trigger round — the canonical operator
// action once an outage is detected and localised. It halts the cascade
// once no line is overloaded anymore.
func ShedLoad(frac float64, ratings Ratings) Intervention {
	return func(_ int, g *grid.Grid) bool {
		for i := range g.Buses {
			g.Buses[i].Pd *= 1 - frac
			g.Buses[i].Qd *= 1 - frac
		}
		*g = *powerflow.Dispatch(g, 0)
		flows, err := Flows(g)
		if err != nil {
			return false
		}
		for e := range g.Branches {
			if g.Branches[e].Status && math.Abs(flows[e]) > ratings[e] {
				return false // still overloaded: cascade continues
			}
		}
		return true
	}
}

// Vulnerability sweeps every valid single-line trigger and returns the
// lines whose loss cascades into at least minFailed further trips —
// the structural-vulnerability analysis of [3] on this grid.
func Vulnerability(g *grid.Grid, ratings Ratings, minFailed int) ([]grid.Line, error) {
	var out []grid.Line
	for e := 0; e < g.E(); e++ {
		if !g.ConnectedWithout(grid.Line(e)) {
			continue
		}
		res, err := Run(g, ratings, []grid.Line{grid.Line(e)}, Options{})
		if err != nil {
			return nil, err
		}
		if len(res.Failed)-1 >= minFailed {
			out = append(out, grid.Line(e))
		}
	}
	return out, nil
}

// overloadMargin is exposed for tests: the worst ratio of |flow| to
// rating over in-service lines (1.0 means at the limit).
func overloadMargin(g *grid.Grid, ratings Ratings) (float64, error) {
	flows, err := Flows(g)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for e := range g.Branches {
		if !g.Branches[e].Status || ratings[e] == 0 { //gridlint:ignore floatcmp zero rating is the unrated-branch sentinel from the case file
			continue
		}
		if r := math.Abs(flows[e]) / ratings[e]; r > worst {
			worst = r
		}
	}
	return worst, nil
}
