package pmuoutage

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/pmunet"
)

// Model is an immutable, versioned artifact holding everything training
// produces: the learned detector state (subspaces, ellipses, capability
// tables, detection groups, thresholds) plus the facade Options it was
// trained under. Train once with TrainModel, persist with Encode, and
// serve from any number of Systems via NewSystemFromModel — none of
// which repeats the power-flow simulation or SVD work.
//
// A Model is safe for concurrent use: it is never mutated after
// TrainModel or DecodeModel returns, and every System built from it
// shares the read-only numeric payload.
type Model struct {
	opts Options
	dm   *detect.Model
}

// modelMeta is the facade metadata embedded in the detect-layer
// artifact's Extra field. It rides inside the same file, is covered by
// the same fingerprint, and keeps the detect layer ignorant of facade
// types.
type modelMeta struct {
	Options Options `json:"options"`
}

// TrainModel runs the full training pipeline — grid load, PMU-network
// partition, data simulation, detector training — and returns the
// sealed artifact. It is TrainModelContext with a background context.
func TrainModel(opts Options) (*Model, error) {
	return TrainModelContext(context.Background(), opts)
}

// TrainModelContext is TrainModel with cancellation: the simulation and
// training pipeline checks ctx between scenarios and returns its error
// early when cancelled. Parallelism is bounded by Options.Workers.
// An Options.Case naming no built-in system fails with ErrUnknownCase.
func TrainModelContext(ctx context.Context, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	g, err := cases.Load(opts.Case)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (available: %v)", ErrUnknownCase, opts.Case, Cases())
	}
	clusters := opts.Clusters
	if clusters <= 0 {
		clusters = g.N() / 10
		if clusters < 3 {
			clusters = 3
		}
	}
	nw, err := pmunet.Build(g, clusters)
	if err != nil {
		return nil, err
	}
	data, err := dataset.GenerateContext(ctx, g, dataset.GenConfig{
		Steps: opts.TrainSteps, Seed: opts.Seed, UseDC: opts.UseDC, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	dcfg := opts.Detector
	dcfg.Workers = opts.Workers
	det, err := detect.TrainContext(ctx, data, nw, dcfg)
	if err != nil {
		return nil, err
	}
	dm, err := det.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot failed: %v", ErrBadModel, err)
	}
	extra, err := json.Marshal(modelMeta{Options: opts})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding options: %v", ErrBadModel, err)
	}
	dm.Extra = extra
	if err := dm.Seal(); err != nil {
		return nil, fmt.Errorf("%w: sealing: %v", ErrBadModel, err)
	}
	return &Model{opts: opts, dm: dm}, nil
}

// NewSystemFromModel builds a serving System from a trained artifact.
// It performs no simulation or numeric training — only cheap structural
// rewrapping — so it is what replicas and hot reloads call. Multiple
// Systems may be built from one Model; they share the read-only learned
// state. A structurally inconsistent model fails with ErrBadModel.
func NewSystemFromModel(m *Model) (*System, error) {
	if m == nil || m.dm == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadModel)
	}
	det, err := detect.FromModel(m.dm)
	if err != nil {
		return nil, wrapModelErr(err)
	}
	return &System{opts: m.opts, g: det.Grid(), nw: det.Network(), det: det, model: m}, nil
}

// Encode writes the artifact to w as a single canonical JSON document:
// format version first, content fingerprint recomputed at write time.
// The bytes are deterministic — encoding the same model twice yields
// identical output — which is what makes artifact diffing and the
// round-trip goldens possible.
func (m *Model) Encode(w io.Writer) error {
	if m == nil || m.dm == nil {
		return fmt.Errorf("%w: nil model", ErrBadModel)
	}
	if err := m.dm.Encode(w); err != nil {
		return wrapModelErr(err)
	}
	return nil
}

// DecodeModel reads an artifact written by Encode, verifying the format
// version (ErrModelVersion on mismatch), the content fingerprint and
// the structural invariants (ErrBadModel on any corruption), and
// restoring the Options the model was trained under.
func DecodeModel(r io.Reader) (*Model, error) {
	dm, err := detect.DecodeModel(r)
	if err != nil {
		return nil, wrapModelErr(err)
	}
	if len(dm.Extra) == 0 {
		return nil, fmt.Errorf("%w: artifact carries no facade options", ErrBadModel)
	}
	var meta modelMeta
	if err := json.Unmarshal(dm.Extra, &meta); err != nil {
		return nil, fmt.Errorf("%w: decoding options: %v", ErrBadModel, err)
	}
	return &Model{opts: meta.Options.withDefaults(), dm: dm}, nil
}

// wrapModelErr maps detect-layer codec errors onto the facade
// sentinels, preserving the version/corruption distinction.
func wrapModelErr(err error) error {
	if errors.Is(err, detect.ErrModelVersion) {
		return fmt.Errorf("%w: %v", ErrModelVersion, err)
	}
	return fmt.Errorf("%w: %v", ErrBadModel, err)
}

// Options returns the facade options the model was trained under.
func (m *Model) Options() Options { return m.opts }

// Case returns the name of the test system the model was trained on.
func (m *Model) Case() string { return m.opts.Case }

// Fingerprint returns the hex SHA-256 content fingerprint of the sealed
// artifact. Two models with equal fingerprints encode to identical
// bytes and detect identically.
func (m *Model) Fingerprint() string { return m.dm.Fingerprint }

// FormatVersion returns the artifact format version the model carries.
func (m *Model) FormatVersion() int { return m.dm.FormatVersion }
