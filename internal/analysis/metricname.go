package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName polices the telemetry registration surface (internal/obs):
// every metric name and label key handed to a Registry registration
// method must be a package-level constant whose value is snake_case,
// and each metric name must be registered from exactly one call site
// per package. Constants make the metric catalog greppable; the
// single-call-site rule keeps /metrics series from being defined in
// two places with drifting help strings (the registry panics on exact
// duplicates only at runtime — this catches the mistake at lint time).
// A loop over shards or routes is one call site, so per-label fan-out
// stays idiomatic.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "require const snake_case metric/label names, each registered at one call site",
	Run:  runMetricName,
}

// metricRegMethods maps each Registry registration method to the
// argument index where the variadic label key/value pairs begin.
// GaugeFunc and AttachCounter carry an extra payload argument (the
// callback / the counter) between help and the labels.
var metricRegMethods = map[string]int{
	"Counter":        2,
	"Gauge":          2,
	"Histogram":      2,
	"ValueHistogram": 2,
	"GaugeFunc":      3,
	"AttachCounter":  3,
}

// tracerStageMethods maps each Tracer span method to the index of its
// stage argument. Stage names feed the same dashboards as metric labels
// (per-stage SLO rows keyed by stage string), so they get the same
// const + snake_case treatment — but not the single-call-site rule,
// since a stage is naturally started from wherever that stage runs.
var tracerStageMethods = map[string]int{
	"StartSpan":  1,
	"RecordSpan": 1,
}

// snakeCaseRE is the shape every metric name and label key must have:
// lowercase words joined by single underscores, starting with a letter.
var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runMetricName(pass *Pass) error {
	firstSite := map[string]ast.Node{} // metric name value -> first registration
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if idx, ok := receiverMethod(pass, call, "Tracer", tracerStageMethods); ok {
				if idx < len(call.Args) {
					checkMetricIdent(pass, call.Args[idx], "span stage")
				}
				return true
			}
			labelStart, ok := registryMethod(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if name, ok := checkMetricIdent(pass, call.Args[0], "metric name"); ok {
				if prev, dup := firstSite[name]; dup {
					pass.Report(call.Pos(), "metric %q is registered at more than one call site (first at %s); register each name exactly once",
						name, pass.Fset.Position(prev.Pos()))
				} else {
					firstSite[name] = call
				}
			}
			// Label keys sit at even offsets of the variadic tail. A
			// spread (labels...) hides the pairs; leave it to runtime.
			if call.Ellipsis.IsValid() {
				return true
			}
			for i := labelStart; i < len(call.Args); i += 2 {
				checkMetricIdent(pass, call.Args[i], "label key")
			}
			return true
		})
	}
	return nil
}

// registryMethod reports whether call is a registration method on a
// type named Registry, returning the index of its first label argument.
func registryMethod(pass *Pass, call *ast.CallExpr) (int, bool) {
	return receiverMethod(pass, call, "Registry", metricRegMethods)
}

// receiverMethod reports whether call is one of methods on a type with
// the given name, returning the mapped argument index.
func receiverMethod(pass *Pass, call *ast.CallExpr, recvName string, methods map[string]int) (int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	idx, ok := methods[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != recvName {
		return 0, false
	}
	return idx, true
}

// checkMetricIdent validates one name-position argument (metric name or
// label key): it must reference a package-level string constant whose
// value is snake_case. It returns the constant's value when the
// argument resolves to a constant at all, so duplicate detection works
// even for names that fail the style checks.
func checkMetricIdent(pass *Pass, arg ast.Expr, role string) (string, bool) {
	obj := constObject(pass, arg)
	if obj == nil {
		pass.Report(arg.Pos(), "%s must be a package-level named constant, not %s", role, describeExpr(arg))
		return "", false
	}
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		pass.Report(arg.Pos(), "%s constant %s must be declared at package level", role, obj.Name())
		return "", false
	}
	if obj.Val().Kind() != constant.String {
		return "", false
	}
	val := constant.StringVal(obj.Val())
	if !snakeCaseRE.MatchString(val) {
		pass.Report(arg.Pos(), "%s %q (const %s) is not snake_case", role, val, obj.Name())
		return val, true // still a usable name for duplicate tracking
	}
	return val, true
}

// constObject resolves arg to the *types.Const it references, or nil
// for literals, variables, and anything computed.
func constObject(pass *Pass, arg ast.Expr) *types.Const {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		c, _ := pass.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// describeExpr names the offending argument kind for the diagnostic.
func describeExpr(arg ast.Expr) string {
	switch ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		return "a string literal"
	case *ast.Ident, *ast.SelectorExpr:
		return "a variable"
	default:
		return "a computed expression"
	}
}
