// Package obs is the serving stack's stdlib-only telemetry layer:
// a metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with derived p50/p95/p99), Prometheus text exposition,
// trace-ID propagation through context, and log/slog helpers.
//
// Design rules, in order:
//
//   - Observational only. Nothing in this package influences detection:
//     recording a metric or span never changes routing, batching, or
//     detector arithmetic, so outputs stay byte-identical with telemetry
//     on or off (pinned by equivalence tests in internal/service).
//   - Allocation-free on the hot path. Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations; every recording
//     method is nil-safe, so a disabled metric (nil cell) costs one
//     branch and zero allocations.
//   - Registered once, read twice. A cell registered here backs both the
//     JSON stats endpoints and GET /metrics — two views of one set of
//     atomics, never two parallel counters that can drift.
//
// Metric and label names must be package-level snake_case constants and
// each metric name must have exactly one registration call site; the
// gridlint analyzer `metricname` enforces this statically, and the
// registry re-validates at runtime (registration panics on malformed or
// duplicate names — misregistration is a programming error, caught at
// startup).
package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic cell. The zero value is
// ready to use; methods on a nil *Counter are no-ops, so an unregistered
// (disabled) counter costs nothing on the hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//gridlint:zeroalloc
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
//
//gridlint:zeroalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Like Counter, nil gauges are
// inert.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//gridlint:zeroalloc
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease).
//
//gridlint:zeroalloc
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets are the fixed upper bounds (seconds) every latency
// histogram uses: 10µs to 10s, roughly 2.5× apart. Fixed buckets keep
// Observe a single indexed atomic increment and make bucket counts
// comparable across shards, stages, and process restarts.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ValueBuckets are the fixed upper bounds for dimensionless value
// histograms (ValueHistogram): 1e-12 — numerical noise between
// byte-identical detectors — up to 100, so genuine model divergence
// lands in resolvable buckets.
var ValueBuckets = []float64{
	1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100,
}

// Histogram is a fixed-bucket latency histogram. Observe is a bucket
// scan plus three atomic adds — no allocation, no lock. Methods on a nil
// *Histogram are no-ops.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds; +Inf implied
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration. Negative durations count in the first
// bucket (clock adjustments must not corrupt the running sum by more
// than they already did the measurement).
//
//gridlint:zeroalloc
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] { // le is inclusive: s <= bound stays
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// ObserveValue records one dimensionless value (e.g. a score
// divergence) into the histogram, bucketed by magnitude. Negative
// values record their absolute value — callers measure distances.
//
//gridlint:zeroalloc
func (h *Histogram) ObserveValue(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = -v
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(v * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNS.Load()) / 1e9
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing the target rank; observations in the
// overflow (+Inf) bucket clamp to the largest finite bound. Under
// concurrent writes the estimate is approximate, like any scrape.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n > 0 && cum+n >= rank {
			if i == len(h.bounds) { // overflow bucket: no finite upper edge
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*((rank-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot copies the histogram into plain values; nil histograms
// return an empty snapshot. Bounds aliases the histogram's bound slice
// — callers must treat it as read-only.
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil {
		return &HistSnapshot{}
	}
	return h.snapshot()
}

// snapshot copies the histogram into plain values.
func (h *Histogram) snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.SumSeconds(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.P50, s.P95, s.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	return s
}

// Kind classifies a registered metric.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled time series inside a family.
type series struct {
	labels  []string // alternating key, value
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name (one HELP/TYPE block
// in the exposition).
type family struct {
	name, help string
	kind       Kind
	series     []*series
}

// Registry holds registered metrics and renders them in Prometheus text
// format. It implements http.Handler, so it can be mounted directly at
// GET /metrics. All methods are safe for concurrent use; registration
// methods on a nil *Registry return nil cells, which record nothing —
// the disabled-telemetry path.
type Registry struct {
	mu       sync.Mutex
	families []*family // first-registration order, for stable output
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter registers a counter series under name with the given label
// key/value pairs and returns its cell. Registering the same name with
// new label values extends the family; an exact duplicate panics.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, KindCounter, &series{labels: labels, counter: c})
	return c
}

// AttachCounter registers an existing counter cell (one owned by another
// subsystem, e.g. the comm collector) so the registry and the owner read
// the same atomics.
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, KindCounter, &series{labels: labels, counter: c})
}

// Gauge registers a gauge series and returns its cell.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, KindGauge, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at read time —
// the bridge for values another subsystem already maintains (queue
// depths, pending-map sizes). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, &series{labels: labels, gaugeFn: fn})
}

// Histogram registers a latency histogram series (LatencyBuckets bounds)
// and returns its cell.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(LatencyBuckets)
	r.register(name, help, KindHistogram, &series{labels: labels, hist: h})
	return h
}

// ValueHistogram registers a dimensionless value histogram series
// (ValueBuckets bounds — decade-ish spacing from 1e-12 to 100, sized
// for score divergences) and returns its cell. Record through
// Histogram.ObserveValue.
func (r *Registry) ValueHistogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(ValueBuckets)
	r.register(name, help, KindHistogram, &series{labels: labels, hist: h})
	return h
}

func (r *Registry) register(name, help string, kind Kind, s *series) {
	if !snakeCase(name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", name))
	}
	if len(s.labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q has odd label list %q (want key/value pairs)", name, s.labels))
	}
	for i := 0; i < len(s.labels); i += 2 {
		if !snakeCase(s.labels[i]) {
			panic(fmt.Sprintf("obs: metric %q label key %q is not snake_case", name, s.labels[i]))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	for _, prev := range f.series {
		if labelsEqual(prev.labels, s.labels) {
			panic(fmt.Sprintf("obs: metric %q%s registered twice", name, labelString(s.labels)))
		}
	}
	f.series = append(f.series, s)
}

// snakeCase reports whether s is a valid snake_case metric or label
// name: lowercase letter first, then lowercase letters, digits, and
// underscores.
func snakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func labelsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Series is one time series in a Snapshot.
type Series struct {
	Name   string
	Kind   Kind
	Labels []string // alternating key, value
	// Value is the counter or gauge reading; for histograms it is the
	// sum of observations in seconds.
	Value float64
	// Hist carries bucket detail and derived quantiles for histograms.
	Hist *HistSnapshot
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Bounds []float64 // finite upper bounds, seconds
	Counts []uint64  // per-bucket counts; Counts[len(Bounds)] is +Inf
	Count  uint64
	Sum    float64 // seconds
	P50    float64
	P95    float64
	P99    float64
}

// Snapshot copies every registered series into plain values, in
// registration order — the in-process view behind the same atomics GET
// /metrics renders.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for _, f := range r.families {
		for _, s := range f.series {
			sv := Series{Name: f.name, Kind: f.kind, Labels: s.labels}
			switch {
			case s.counter != nil:
				sv.Value = float64(s.counter.Load())
			case s.gauge != nil:
				sv.Value = float64(s.gauge.Load())
			case s.gaugeFn != nil:
				sv.Value = s.gaugeFn()
			case s.hist != nil:
				sv.Hist = s.hist.snapshot()
				sv.Value = sv.Hist.Sum
			}
			out = append(out, sv)
		}
	}
	return out
}

// find returns the series with the exact name and label pairs, or nil.
func (r *Registry) find(name string, labels []string) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		return nil
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	return nil
}

// CounterValue reads one counter series by exact name and label pairs
// (0 if absent) — the lookup the /v1/stats-vs-/metrics parity tests
// use.
func (r *Registry) CounterValue(name string, labels ...string) uint64 {
	if s := r.find(name, labels); s != nil {
		return s.counter.Load()
	}
	return 0
}

// GaugeValue reads one gauge series by exact name and label pairs.
func (r *Registry) GaugeValue(name string, labels ...string) float64 {
	if s := r.find(name, labels); s != nil {
		if s.gaugeFn != nil {
			return s.gaugeFn()
		}
		return float64(s.gauge.Load())
	}
	return 0
}

// HistogramSnapshot reads one histogram series by exact name and label
// pairs; ok reports whether it exists.
func (r *Registry) HistogramSnapshot(name string, labels ...string) (*HistSnapshot, bool) {
	if s := r.find(name, labels); s != nil && s.hist != nil {
		return s.hist.snapshot(), true
	}
	return nil, false
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): HELP and TYPE per family, then one
// line per series; histograms expand to cumulative _bucket lines plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(float64(s.counter.Load())))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(float64(s.gauge.Load())))
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	var cum uint64
	for i := range s.hist.buckets {
		cum += s.hist.buckets[i].Load()
		le := "+Inf"
		if i < len(s.hist.bounds) {
			le = formatFloat(s.hist.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(append(append([]string{}, s.labels...), "le", le)), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(s.labels), formatFloat(s.hist.SumSeconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(s.labels), s.hist.count.Load())
}

// ServeHTTP renders the registry — mount it at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// The status line is committed; a write error only means the scraper
	// went away.
	_ = r.WritePrometheus(w)
}

// labelString renders {k="v",...} ("" when no labels).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
