package api

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randHist builds a cumulative histogram over the shared bounds with
// random bucket counts, keeping Count/Sum consistent with Counts.
func randHist(rng *rand.Rand, bounds []float64) Hist {
	h := Hist{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
	for i := range h.Counts {
		c := uint64(rng.Intn(50))
		h.Counts[i] = c
		h.Count += c
		// Attribute mass at the bucket's upper bound (overflow at 2x
		// the last bound) — any consistent rule works for the property.
		b := 2 * bounds[len(bounds)-1]
		if i < len(bounds) {
			b = bounds[i]
		}
		h.Sum += float64(c) * b
	}
	return h
}

// TestHistMergeProperties is the property test behind the fleet
// aggregator: merging per-backend fixed-bucket histograms must be
// order-invariant and must preserve totals and cumulative-bucket
// monotonicity, for any number of operands in any order.
func TestHistMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		parts := make([]Hist, n)
		var wantCount uint64
		var wantSum float64
		for i := range parts {
			parts[i] = randHist(rng, bounds)
			wantCount += parts[i].Count
			wantSum += parts[i].Sum
		}

		mergeAll := func(order []int) Hist {
			var m Hist
			for _, idx := range order {
				if err := m.Merge(parts[idx]); err != nil {
					t.Fatalf("trial %d: merge: %v", trial, err)
				}
			}
			return m
		}

		fwd := make([]int, n)
		for i := range fwd {
			fwd[i] = i
		}
		shuf := append([]int(nil), fwd...)
		rng.Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })

		a, b := mergeAll(fwd), mergeAll(shuf)

		// Order invariance: identical result from any merge order.
		if a.Count != b.Count || math.Abs(a.Sum-b.Sum) > 1e-9*math.Abs(a.Sum) {
			t.Fatalf("trial %d: merge order changed totals: %v vs %v", trial, a, b)
		}
		for i := range a.Counts {
			if a.Counts[i] != b.Counts[i] {
				t.Fatalf("trial %d: merge order changed bucket %d: %d vs %d", trial, i, a.Counts[i], b.Counts[i])
			}
		}

		// Totals preserved: Count is the sum of operands and of buckets.
		if a.Count != wantCount {
			t.Fatalf("trial %d: merged Count = %d, want %d", trial, a.Count, wantCount)
		}
		if math.Abs(a.Sum-wantSum) > 1e-9*math.Abs(wantSum) {
			t.Fatalf("trial %d: merged Sum = %g, want %g", trial, a.Sum, wantSum)
		}
		var bucketSum uint64
		for _, c := range a.Counts {
			bucketSum += c
		}
		if bucketSum != a.Count {
			t.Fatalf("trial %d: bucket sum %d != Count %d", trial, bucketSum, a.Count)
		}

		// Cumulative monotonicity: running bucket totals never decrease
		// (trivially true for non-negative per-bucket counts, but this
		// is the invariant Prometheus-style consumers read off the wire).
		var cum, prev uint64
		for i, c := range a.Counts {
			cum += c
			if cum < prev {
				t.Fatalf("trial %d: cumulative count decreased at bucket %d", trial, i)
			}
			prev = cum
		}
	}
}

func TestHistMergeBoundMismatch(t *testing.T) {
	a := Hist{Bounds: []float64{1, 2}, Counts: []uint64{1, 0, 0}, Count: 1, Sum: 1}
	b := Hist{Bounds: []float64{1, 3}, Counts: []uint64{0, 1, 0}, Count: 1, Sum: 3}
	if err := a.Merge(b); !errors.Is(err, ErrHistMismatch) {
		t.Fatalf("merging histograms with different bounds: err = %v, want ErrHistMismatch", err)
	}
	c := Hist{Bounds: []float64{1}, Counts: []uint64{1, 0}, Count: 1, Sum: 1}
	if err := a.Merge(c); !errors.Is(err, ErrHistMismatch) {
		t.Fatalf("merging histograms with different bucket counts: err = %v, want ErrHistMismatch", err)
	}
}

func TestHistDelta(t *testing.T) {
	prev := Hist{Bounds: []float64{1, 2}, Counts: []uint64{1, 1, 0}, Count: 2, Sum: 2.5}
	cur := Hist{Bounds: []float64{1, 2}, Counts: []uint64{3, 1, 2}, Count: 6, Sum: 9.5}
	d := cur.Delta(prev)
	if d.Count != 4 || d.Counts[0] != 2 || d.Counts[1] != 0 || d.Counts[2] != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if math.Abs(d.Sum-7.0) > 1e-12 {
		t.Fatalf("delta sum = %g, want 7", d.Sum)
	}

	// Counter reset: the backend restarted, cumulative counts went
	// backwards — the whole current histogram is the delta.
	reset := cur.Delta(Hist{Bounds: []float64{1, 2}, Counts: []uint64{9, 9, 9}, Count: 27, Sum: 50})
	if reset.Count != cur.Count || reset.Counts[0] != cur.Counts[0] {
		t.Fatalf("reset delta should return current whole, got %+v", reset)
	}
}

func TestHistQuantile(t *testing.T) {
	h := Hist{Bounds: []float64{1, 2, 4}, Counts: []uint64{0, 10, 0, 0}, Count: 10, Sum: 15}
	// All mass in the (1,2] bucket: the median interpolates inside it.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", q)
	}
	// Overflow-only mass clamps to the largest finite bound.
	o := Hist{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 5}, Count: 5, Sum: 50}
	if q := o.Quantile(0.99); q != 2 {
		t.Fatalf("overflow p99 = %g, want clamp to 2", q)
	}
	var empty Hist
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

// TestTraceFleetWireFieldNames pins the JSON field names of the trace
// and fleet wire types, same contract rule as TestWireFieldNames.
func TestTraceFleetWireFieldNames(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"TraceSpan",
			TraceSpan{ID: "a1", Parent: "b2", Stage: "detect", StartUnixNS: 5, DurationNS: 7, Err: "boom", Attrs: map[string]string{"shard": "east"}},
			`{"id":"a1","parent":"b2","stage":"detect","start_unix_ns":5,"duration_ns":7,"err":"boom","attrs":{"shard":"east"}}`,
		},
		{
			"Trace",
			Trace{TraceID: "t1", Kept: TraceKeptSlow, StartUnixNS: 5, DurationNS: 9, Spans: []TraceSpan{{ID: "a1", Root: true, Stage: "http", StartUnixNS: 5, DurationNS: 9}}},
			`{"trace_id":"t1","kept":"slow","start_unix_ns":5,"duration_ns":9,"spans":[{"id":"a1","root":true,"stage":"http","start_unix_ns":5,"duration_ns":9}]}`,
		},
		{
			"TraceList",
			TraceList{Traces: []Trace{}},
			`{"traces":[]}`,
		},
		{
			"Hist",
			Hist{Bounds: []float64{1}, Counts: []uint64{2, 3}, Count: 5, Sum: 4.5},
			`{"bounds":[1],"counts":[2,3],"count":5,"sum":4.5}`,
		},
		{
			"FleetBackend",
			FleetBackend{URL: "http://b", Pool: "primary", Healthy: true, Requests: 1, Samples: 2, Shed: 3, Unavailable: 4, Ejections: 5, Readmissions: 6, LastEjectionMS: 7, P99DetectMS: 8.5, LastScrapeMS: 9, ScrapeError: "x"},
			`{"url":"http://b","pool":"primary","healthy":true,"requests":1,"samples":2,"shed":3,"unavailable":4,"ejections":5,"readmissions":6,"last_ejection_ms":7,"p99_detect_ms":8.5,"last_scrape_ms":9,"scrape_error":"x"}`,
		},
		{
			"FleetHealth",
			FleetHealth{WindowMS: 1, Availability: 0.5, P99DetectMS: 2.5, ShedRate: 0.25, Requests: 3, Samples: 4, Shed: 5, Errors: 6, DesperateUses: 7, Backends: []FleetBackend{}},
			`{"window_ms":1,"availability":0.5,"p99_detect_ms":2.5,"shed_rate":0.25,"requests":3,"samples":4,"shed":5,"errors":6,"desperate_uses":7,"backends":[]}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s wire shape drifted:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}
