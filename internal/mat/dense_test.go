package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewDenseDims(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d), want (3,4)", r, c)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("Rows/Cols = %d/%d, want 3/4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewDenseDataBacking(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseData(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	d[0] = 42 // backing slice is shared by contract
	if m.At(0, 0) != 42 {
		t.Fatalf("NewDenseData must not copy; At(0,0) = %v", m.At(0, 0))
	}
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 3, []float64{1, 2})
}

func TestSetAtAddRoundTrip(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 3, 3)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := randDense(rng, r, c)
		return m.T().T().Equalf(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 4, 6)
	if !Identity(4).Mul(m).Equalf(m, 1e-15) {
		t.Error("I*m != m")
	}
	if !m.Mul(Identity(6)).Equalf(m, 1e-15) {
		t.Error("m*I != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !got.Equalf(want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3, 4)
		b := randDense(rng, 4, 5)
		c := randDense(rng, 5, 2)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equalf(right, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 4, 3)
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xm := NewDense(3, 1)
		xm.SetCol(0, x)
		got := a.MulVec(x)
		want := a.Mul(xm)
		for i, v := range got {
			if math.Abs(v-want.At(i, 0)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransposeMulProperty(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3, 5)
		b := randDense(rng, 5, 4)
		return a.Mul(b).T().Equalf(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 3, 3)
	b := randDense(rng, 3, 3)
	if !a.AddMat(b).SubMat(b).Equalf(a, 1e-12) {
		t.Error("(a+b)-b != a")
	}
	if !a.Scale(2).SubMat(a).Equalf(a, 1e-12) {
		t.Error("2a - a != a")
	}
	if a.Scale(0).FrobeniusNorm() != 0 {
		t.Error("0*a != 0")
	}
}

func TestRowColRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randDense(rng, 4, 5)
	r2 := m.Row(2)
	c3 := m.Col(3)
	if r2[3] != m.At(2, 3) || c3[2] != m.At(2, 3) {
		t.Fatal("Row/Col disagree with At")
	}
	m2 := NewDense(4, 5)
	for i := 0; i < 4; i++ {
		m2.SetRow(i, m.Row(i))
	}
	if !m2.Equalf(m, 0) {
		t.Fatal("SetRow(Row) round trip failed")
	}
	m3 := NewDense(4, 5)
	for j := 0; j < 5; j++ {
		m3.SetCol(j, m.Col(j))
	}
	if !m3.Equalf(m, 0) {
		t.Fatal("SetCol(Col) round trip failed")
	}
}

func TestRowIsCopy(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1, 2})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestRawRowIsView(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1, 2})
	r := m.RawRow(0)
	r[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("RawRow must return a view")
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := NewDenseData(3, 3, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	sr := m.SelectRows([]int{2, 0})
	want := NewDenseData(2, 3, []float64{7, 8, 9, 1, 2, 3})
	if !sr.Equalf(want, 0) {
		t.Fatalf("SelectRows = %v, want %v", sr, want)
	}
	sc := m.SelectCols([]int{1})
	wantC := NewDenseData(3, 1, []float64{2, 5, 8})
	if !sc.Equalf(wantC, 0) {
		t.Fatalf("SelectCols = %v, want %v", sc, wantC)
	}
}

func TestFrobeniusNormKnown(t *testing.T) {
	m := NewDenseData(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseData(2, 2, []float64{-7, 2, 3, 4})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestEqualfShapeMismatch(t *testing.T) {
	if NewDense(2, 2).Equalf(NewDense(2, 3), 1) {
		t.Fatal("matrices of different shapes must not be Equalf")
	}
}

func TestStringSmoke(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if s := m.String(); s == "" {
		t.Fatal("String returned empty")
	}
}
