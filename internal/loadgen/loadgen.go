// Package loadgen generates the stochastic load trajectories and
// measurement noise used to synthesise PMU data. Following the paper
// (§V-A), per-bus load variations follow an Ornstein–Uhlenbeck process
// around the test-case demand over a 24-hour window, and Gaussian noise
// is added to the solved voltage phasors so they resemble real PMU
// measurements.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
)

// OUParams configures the Ornstein–Uhlenbeck load process
//
//	dX_t = theta (mu - X_t) dt + sigma dW_t
//
// discretised exactly over a fixed step.
type OUParams struct {
	Theta float64 // mean-reversion rate per hour
	Sigma float64 // volatility (fraction of mean load per sqrt hour)
	DtH   float64 // time step in hours
	// Corr is the spatial correlation of load variation across buses,
	// in [0, 1): demand moves together system-wide (weather, time of
	// day) with only a small idiosyncratic residual per bus, following
	// the multi-area consumption model of Perninge et al. [16]. The
	// correlated structure is what makes the normal-operation data
	// low-rank — the property the detector's S⁰ subspace exploits.
	Corr float64
}

// DefaultOU returns the parameters used by the data generator: gentle
// mean reversion with a few percent of load volatility, sampled so a
// 24-hour day yields the requested number of steps.
func DefaultOU(steps int) OUParams {
	if steps < 1 {
		steps = 1
	}
	return OUParams{Theta: 0.5, Sigma: 0.03, DtH: 24 / float64(steps), Corr: 0.85}
}

// Process is a deterministic (seeded) multi-bus OU load process: each
// bus load is a multiplier around 1.0 applied to its base demand, built
// from a shared system-wide OU factor plus a per-bus idiosyncratic OU
// residual (spatial correlation Corr).
type Process struct {
	p      OUParams
	state  []float64 // per-bus idiosyncratic OU states (around 0)
	common float64   // shared OU state (around 0)
	rng    *rand.Rand
	// Exact discretisation coefficients.
	decay, diff float64
	// Mixing weights: multiplier_i = 1 + wc*common + wi*state_i keeps
	// the stationary variance at sigma²/(2 theta) for any Corr.
	wc, wi float64
}

// NewProcess creates an OU process for n buses with the given seed.
func NewProcess(n int, p OUParams, seed int64) (*Process, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: need at least one bus, got %d", n)
	}
	if p.Theta <= 0 || p.Sigma < 0 || p.DtH <= 0 {
		return nil, fmt.Errorf("loadgen: invalid OU params %+v", p)
	}
	if p.Corr < 0 || p.Corr >= 1 {
		return nil, fmt.Errorf("loadgen: correlation %v outside [0,1)", p.Corr)
	}
	decay := math.Exp(-p.Theta * p.DtH)
	// Stationary-consistent diffusion for the exact discretisation.
	diff := p.Sigma * math.Sqrt((1-decay*decay)/(2*p.Theta))
	return &Process{
		p: p, state: make([]float64, n), rng: rand.New(rand.NewSource(seed)),
		decay: decay, diff: diff,
		wc: math.Sqrt(p.Corr), wi: math.Sqrt(1 - p.Corr),
	}, nil
}

// Step advances the process one time step and returns the per-bus load
// multipliers. The returned slice is a copy.
func (pr *Process) Step() []float64 {
	pr.common = pr.common*pr.decay + pr.diff*pr.rng.NormFloat64()
	out := make([]float64, len(pr.state))
	for i, x := range pr.state {
		pr.state[i] = x*pr.decay + pr.diff*pr.rng.NormFloat64()
		m := 1 + pr.wc*pr.common + pr.wi*pr.state[i]
		// Loads cannot go negative; clamp far tail events.
		if m < 0.05 {
			m = 0.05
		}
		out[i] = m
	}
	return out
}

// Multipliers returns a T-by-n matrix (as nested slices) of load
// multipliers for T steps.
func (pr *Process) Multipliers(t int) [][]float64 {
	out := make([][]float64, t)
	for k := range out {
		out[k] = pr.Step()
	}
	return out
}

// NoiseModel adds Gaussian measurement noise to voltage phasors. Sigma
// values are absolute: per-unit for magnitude, radians for angle. IEEE
// C37.118 total-vector-error budgets put realistic PMU noise well under
// 1% — the defaults sit comfortably inside that.
type NoiseModel struct {
	SigmaVm float64 //gridlint:unit pu
	SigmaVa float64 //gridlint:unit rad
	rng     *rand.Rand
}

// NewNoiseModel returns a seeded noise model. Non-positive sigmas are
// replaced by the defaults (1e-3 p.u., 1e-3 rad).
func NewNoiseModel(sigmaVm, sigmaVa float64, seed int64) *NoiseModel {
	if sigmaVm <= 0 {
		sigmaVm = 1e-3
	}
	if sigmaVa <= 0 {
		sigmaVa = 1e-3
	}
	return &NoiseModel{SigmaVm: sigmaVm, SigmaVa: sigmaVa, rng: rand.New(rand.NewSource(seed))}
}

// Perturb returns noisy copies of the magnitude and angle vectors.
//
//gridlint:unit vm pu
//gridlint:unit va rad
func (nm *NoiseModel) Perturb(vm, va []float64) ([]float64, []float64) {
	ovm := make([]float64, len(vm))
	ova := make([]float64, len(va))
	for i := range vm {
		ovm[i] = vm[i] + nm.SigmaVm*nm.rng.NormFloat64()
	}
	for i := range va {
		ova[i] = va[i] + nm.SigmaVa*nm.rng.NormFloat64()
	}
	return ovm, ova
}

// DayProfile returns a smooth 24-hour demand shape (fraction of peak,
// in [minFrac, 1]) evaluated at the given number of steps. It captures
// the morning ramp and evening peak typical of system load curves and
// can be composed with the OU multipliers for a realistic trajectory.
func DayProfile(steps int, minFrac float64) []float64 {
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 0.7
	}
	out := make([]float64, steps)
	for k := 0; k < steps; k++ {
		h := 24 * float64(k) / float64(steps)
		// Two-bump shape: mid-day plateau plus evening peak.
		v := 0.6 + 0.25*math.Sin((h-6)/24*2*math.Pi) + 0.15*math.Exp(-(h-19)*(h-19)/8)
		if v > 1 {
			v = 1
		}
		lo := minFrac
		if v < lo {
			v = lo
		}
		out[k] = v
	}
	return out
}
