package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags uses of math/rand's package-level generator
// (rand.Float64, rand.Intn, rand.Shuffle, ...). Every stochastic path in
// this repo — synthetic grids, OU load processes, measurement noise,
// fault injection — must be reproducible from a seed, so randomness is
// always drawn from an injected *rand.Rand (rand.New(rand.NewSource(s))
// remains allowed: it constructs exactly such a generator).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flag math/rand package-level functions; inject a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package-level functions that do
// not touch the global generator.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on *rand.Rand are the fix, not the bug
				return true
			}
			if globalRandAllowed[fn.Name()] {
				return true
			}
			pass.Report(sel.Pos(), "rand.%s uses the global math/rand generator; experiments must inject a seeded *rand.Rand", fn.Name())
			return true
		})
	}
	return nil
}
