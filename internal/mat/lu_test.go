package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 1, 1,
		1, 3, 2,
		1, 0, 0,
	})
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A*x = b rather than hard-coding x.
	r := a.MulVec(x)
	for i := range b {
		if math.Abs(r[i]-b[i]) > 1e-12 {
			t.Fatalf("residual at %d: %v vs %v", i, r[i], b[i])
		}
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randDense(rng, n, n)
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range b {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected ErrSingular for rank-1 matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", got)
	}
}

func TestLUDetPermutationSign(t *testing.T) {
	// This matrix forces a row swap in the first elimination step.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("Det = %v, want -1", got)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	a := randDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 10)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equalf(Identity(n), 1e-9) {
		t.Fatal("A * A^-1 != I")
	}
	if !inv.Mul(a).Equalf(Identity(n), 1e-9) {
		t.Fatal("A^-1 * A != I")
	}
}

func TestLUSolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 5
	a := randDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 8)
	}
	b := randDense(rng, n, 3)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equalf(b, 1e-9) {
		t.Fatal("A*X != B")
	}
}

func TestLUSolveWrongLength(t *testing.T) {
	a := Identity(3)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected error for wrong rhs length")
	}
}
