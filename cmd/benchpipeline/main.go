// Command benchpipeline measures the worker-pooled pipeline stages —
// dataset generation, detector training, the Fig. 10 Monte Carlo — with
// one worker and with all CPUs, and writes the timings as JSON. The two
// configurations compute byte-identical results (see internal/par), so
// the ratio is pure scheduling overhead vs speedup.
//
// It also measures the power-flow scaling ladder: one AC and one DC
// solve per grid size (14 … 1000 buses) on both the dense and the
// sparse solver, so BENCH_pipeline.json documents where the
// SparseBusThreshold dispatch pays off. The 1000-bus rows sit behind
// -full — building that grid alone takes ~30 s, which does not belong
// in the verify budget.
//
// Usage:
//
//	benchpipeline [-o BENCH_pipeline.json] [-reps 3] [-full]
//
// The JSON has one entry per (stage, workers) pair with the best-of-reps
// wall time in nanoseconds, one scaling row per (grid, solver, substrate)
// triple, plus the machine's GOMAXPROCS so single-CPU results are
// readable for what they are.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/powerflow"
)

type result struct {
	Stage   string `json:"stage"`
	Workers int    `json:"workers"` // 0 was resolved to GOMAXPROCS
	NsOp    int64  `json:"ns_op"`   // best of -reps runs
}

// scalingRow is one point of the power-flow scaling ladder: the named
// grid solved once on the named solver backend.
type scalingRow struct {
	Grid   string `json:"grid"`
	Buses  int    `json:"buses"`
	Solver string `json:"solver"` // dense | sparse
	Stage  string `json:"stage"`  // powerflow/ac | powerflow/dc
	NsOp   int64  `json:"ns_op"`  // best of -reps runs
}

type report struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Reps       int          `json:"reps"`
	Results    []result     `json:"results"`
	Scaling    []scalingRow `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output file")
	reps := flag.Int("reps", 3, "repetitions per stage (best run wins)")
	full := flag.Bool("full", false, "include the 1000-bus scaling rows (~30 s grid build)")
	flag.Parse()

	if err := run(*out, *reps, *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}
}

func run(out string, reps int, full bool) error {
	if reps <= 0 {
		reps = 1
	}
	ctx := context.Background()
	g := cases.IEEE30()
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		return err
	}
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		return err
	}

	stages := []struct {
		name string
		fn   func(workers int) error
	}{
		{"dataset/generate-ieee30-dc", func(workers int) error {
			_, err := dataset.GenerateContext(ctx, g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true, Workers: workers})
			return err
		}},
		{"detect/train-ieee30", func(workers int) error {
			_, err := detect.TrainContext(ctx, d, nw, detect.Config{Workers: workers})
			return err
		}},
		{"pmunet/montecarlo-100k", func(workers int) error {
			_, err := nw.ReliabilityMonteCarlo(ctx, pmunet.Reliability{RPMU: 0.97, RLink: 0.99}, 100000, 1, workers)
			return err
		}},
	}

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), Reps: reps}
	workerSet := []int{1}
	if rep.GOMAXPROCS > 1 {
		workerSet = append(workerSet, rep.GOMAXPROCS)
	}
	for _, st := range stages {
		for _, workers := range workerSet {
			best := time.Duration(-1)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := st.fn(workers); err != nil {
					return fmt.Errorf("%s workers=%d: %w", st.name, workers, err)
				}
				if el := time.Since(start); best < 0 || el < best {
					best = el
				}
			}
			rep.Results = append(rep.Results, result{Stage: st.name, Workers: workers, NsOp: best.Nanoseconds()})
			fmt.Printf("%-28s workers=%-2d %12s\n", st.name, workers, best.Round(time.Microsecond))
		}
	}

	scaling, err := scalingLadder(reps, full)
	if err != nil {
		return err
	}
	rep.Scaling = scaling

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// scalingLadder times one warm AC and one warm DC solve per grid size
// on both solver backends. Every (grid, solver) pair computes the same
// solution (the parity tests in internal/powerflow pin this), so the
// dense/sparse ratio is pure linear-algebra cost.
func scalingLadder(reps int, full bool) ([]scalingRow, error) {
	names := []string{"ieee14", "ieee30", "ieee57", "ieee118", "synth300"}
	if full {
		names = append(names, "synth1000")
	}
	var rows []scalingRow
	for _, name := range names {
		g, err := cases.Load(name)
		if err != nil {
			return nil, err
		}
		for _, solver := range []struct {
			label string
			s     powerflow.Solver
		}{{"dense", powerflow.SolverDense}, {"sparse", powerflow.SolverSparse}} {
			// Flat start: the built-in grids store their solved state, and
			// a warm start from the exact solution converges before any
			// factorization runs — measuring nothing.
			ac := func(work *grid.Grid) error {
				_, err := powerflow.SolveAC(work, powerflow.Options{Solver: solver.s, FlatStart: true})
				return err
			}
			dc := func(work *grid.Grid) error {
				_, err := powerflow.SolveDCWith(work, solver.s)
				return err
			}
			for _, stage := range []struct {
				label string
				fn    func(*grid.Grid) error
			}{{"powerflow/ac", ac}, {"powerflow/dc", dc}} {
				best := time.Duration(-1)
				for r := 0; r < reps; r++ {
					work := g.Clone()
					start := time.Now()
					if err := stage.fn(work); err != nil {
						return nil, fmt.Errorf("%s %s %s: %w", name, solver.label, stage.label, err)
					}
					if el := time.Since(start); best < 0 || el < best {
						best = el
					}
				}
				rows = append(rows, scalingRow{
					Grid: name, Buses: g.N(), Solver: solver.label,
					Stage: stage.label, NsOp: best.Nanoseconds(),
				})
				fmt.Printf("%-10s %-6s %-13s %12s\n", name, solver.label, stage.label, best.Round(time.Microsecond))
			}
		}
	}
	return rows, nil
}
