package main

import (
	"path/filepath"
	"testing"

	"os"
	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 10, Seed: 2, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPatterns(t *testing.T) {
	path := writeDataset(t)
	for _, pattern := range []string{"none", "outage", "random", "cluster"} {
		if err := run(path, pattern, 2, 3, 0.7, 1, "", "", false); err != nil {
			t.Fatalf("pattern %s: %v", pattern, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	path := writeDataset(t)
	if err := run(path, "bogus", 2, 3, 0.7, 1, "", "", false); err == nil {
		t.Fatal("expected unknown-pattern error")
	}
	if err := run("/does/not/exist.json", "none", 2, 3, 0.7, 1, "", "", false); err == nil {
		t.Fatal("expected open error")
	}
}

// TestSaveLoadModel: -save-model writes an artifact the -load-model
// path can evaluate without retraining.
func TestSaveLoadModel(t *testing.T) {
	path := writeDataset(t)
	model := filepath.Join(t.TempDir(), "m.json")
	if err := run(path, "none", 2, 3, 0.7, 1, model, "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	if err := run(path, "outage", 2, 3, 0.7, 1, "", model, false); err != nil {
		t.Fatalf("evaluating saved model: %v", err)
	}
	if err := run(path, "none", 2, 3, 0.7, 1, "", "/does/not/exist.model", false); err == nil {
		t.Fatal("expected error for missing model artifact")
	}
}
