// Package client is the Go client for the outaged detection daemon
// (cmd/outaged): JSON over HTTP with bounded, deterministic retries.
//
// Transient conditions — transport errors, 429 (load-shedding), and
// 503 (shard training or restarting) — are retried up to
// Config.MaxRetries times with exponential backoff, honouring the
// server's Retry-After header when present. Terminal HTTP statuses
// (bad request, unknown shard, ...) fail immediately with ErrRequest.
// Every wait is context-aware: a cancelled context stops the retry
// loop mid-backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pmuoutage"
	"pmuoutage/internal/obs"
)

// Typed errors of the client. Everything the client itself mints wraps
// one of these, so callers branch with errors.Is.
var (
	// ErrConfig reports an invalid Config passed to New.
	ErrConfig = errors.New("client: invalid config")
	// ErrRequest reports a terminal server response — a non-retryable
	// HTTP status. The wrapped detail carries the status code and the
	// server's error body.
	ErrRequest = errors.New("client: request failed")
	// ErrExhausted reports that every attempt hit a retryable condition
	// (transport error, 429, 503). The wrapped detail carries the last
	// failure.
	ErrExhausted = errors.New("client: retries exhausted")
)

// Config configures New.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries is how many times a retryable failure is retried after
	// the first attempt (default 3; negative disables retries).
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. A Retry-After header on a 429/503
	// response overrides the computed delay for that attempt. Defaults
	// 100ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Logger, when non-nil, receives a structured line per retry (warn)
	// carrying the request's trace ID, attempt number, and backoff. Nil
	// disables logging; requests behave identically either way.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	return c
}

// Client talks to one outaged daemon. It is safe for concurrent use.
type Client struct {
	cfg Config
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, fmt.Errorf("%w: empty BaseURL", ErrConfig)
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	return &Client{cfg: cfg.withDefaults()}, nil
}

// detectRequest mirrors the daemon's POST /v1/detect body.
type detectRequest struct {
	Shard   string             `json:"shard"`
	Samples []pmuoutage.Sample `json:"samples"`
}

type detectResponse struct {
	Shard   string              `json:"shard"`
	Reports []*pmuoutage.Report `json:"reports"`
}

// reloadRequest mirrors the daemon's POST /v1/reload body.
type reloadRequest struct {
	Shard string `json:"shard"`
	Path  string `json:"path,omitempty"`
}

// ReloadResult is the daemon's reply to a reload: the shard's new
// incarnation counter and the fingerprint of the model now serving.
type ReloadResult struct {
	Shard      string `json:"shard"`
	Generation uint64 `json:"generation"`
	Model      string `json:"model"`
}

// Detect classifies samples on the named shard and returns one report
// per sample, in order — exactly what the shard's System.DetectBatch
// returns. Overload and not-ready conditions are retried.
func (c *Client) Detect(ctx context.Context, shard string, samples []pmuoutage.Sample) ([]*pmuoutage.Report, error) {
	var out detectResponse
	if err := c.post(ctx, "/v1/detect", detectRequest{Shard: shard, Samples: samples}, &out); err != nil {
		return nil, err
	}
	return out.Reports, nil
}

// Reload hot-swaps the named shard's model: onto the artifact at path
// (a file on the daemon's filesystem) or, with an empty path, onto a
// freshly retrained model. The shard keeps serving throughout.
func (c *Client) Reload(ctx context.Context, shard, path string) (*ReloadResult, error) {
	var out ReloadResult
	if err := c.post(ctx, "/v1/reload", reloadRequest{Shard: shard, Path: path}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// post marshals the body once and runs the retry loop: attempt,
// classify, wait (server-directed or exponential), repeat. One trace ID
// spans every attempt of a request: the caller's, when the context
// carries one, otherwise minted here — so the daemon's logs show all
// retries of one call under one ID.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("%w: encoding body: %v", ErrConfig, err)
	}
	traceID := obs.TraceID(ctx)
	if traceID == "" {
		traceID = obs.NewTraceID()
		ctx = obs.WithTraceID(ctx, traceID)
	}
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		}
		retryAfter, err := c.attempt(ctx, path, payload, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !errors.Is(err, errRetryable) {
			return err
		}
		lastErr = err
		if retryAfter > 0 {
			backoff = retryAfter
		}
		if lg := c.cfg.Logger; lg != nil && attempt < c.cfg.MaxRetries {
			lg.LogAttrs(ctx, slog.LevelWarn, "retrying request",
				slog.String(obs.AttrComponent, "client"),
				slog.String(obs.AttrTraceID, traceID),
				slog.String("path", path),
				slog.Int("attempt", attempt+1),
				slog.Duration("backoff", backoff),
				slog.String("cause", err.Error()))
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.cfg.MaxRetries+1, lastErr)
}

// errRetryable marks transient attempt failures internally; callers of
// the package only ever see it wrapped inside ErrExhausted.
var errRetryable = errors.New("retryable")

// ServerError is the typed detail behind every non-OK daemon response:
// the HTTP status, the server's error body, and the trace ID the daemon
// echoed — the handle that finds this exact failed request in the
// server's structured logs. It unwraps to ErrRequest (terminal) or to
// the internal retryable marker, so errors.Is keeps working; reach it
// with errors.As.
type ServerError struct {
	// Status is the HTTP status code the daemon answered with.
	Status int
	// Body is the server's error text (truncated to 1 KiB).
	Body string
	// TraceID is the X-Trace-Id the server echoed ("" if none).
	TraceID string

	retryable bool
}

// Error renders the status, body, and trace ID.
func (e *ServerError) Error() string {
	if e.TraceID == "" {
		return fmt.Sprintf("HTTP %d: %s", e.Status, e.Body)
	}
	return fmt.Sprintf("HTTP %d (trace %s): %s", e.Status, e.TraceID, e.Body)
}

// Unwrap ties the error into the package's sentinel taxonomy.
func (e *ServerError) Unwrap() error {
	if e.retryable {
		return errRetryable
	}
	return ErrRequest
}

// attempt performs one HTTP round trip. It returns the server-directed
// retry delay (0 if none) alongside the classification: nil on success,
// an error wrapping errRetryable on transient conditions, a terminal
// error otherwise. The context's trace ID rides the X-Trace-Id request
// header, and the server's echo lands in the ServerError.
func (c *Client) attempt(ctx context.Context, path string, payload []byte, out any) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errRetryable, err)
	}
	defer func() { _ = resp.Body.Close() }()
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, fmt.Errorf("%w: decoding %s response: %v", ErrRequest, path, err)
		}
		return 0, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return parseRetryAfter(resp.Header.Get("Retry-After")), serverError(resp, true)
	default:
		return 0, serverError(resp, false)
	}
}

// serverError builds the typed failure for one non-OK response.
func serverError(resp *http.Response, retryable bool) *ServerError {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return &ServerError{
		Status:    resp.StatusCode,
		Body:      strings.TrimSpace(string(msg)),
		TraceID:   resp.Header.Get(obs.TraceHeader),
		retryable: retryable,
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form the daemon emits); anything else yields 0 (use own backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
