package powerflow

import (
	"math"
	"math/rand"
	"testing"

	"pmuoutage/internal/grid"
)

// randMeshedGrid builds a feasible n-bus meshed grid with a slack, a
// few PV buses, and lognormal-ish loads — enough structure to exercise
// every Jacobian block (P/Q × angle/magnitude) on both solver paths.
func randMeshedGrid(rng *rand.Rand, n int) *grid.Grid {
	g := &grid.Grid{Name: "randmesh", BaseMVA: 100}
	for i := 0; i < n; i++ {
		b := grid.Bus{ID: i + 1, Type: grid.PQ, Vm: 1}
		switch {
		case i == 0:
			b.Type = grid.Slack
			b.Vm = 1.03
		case i%7 == 3:
			b.Type = grid.PV
			b.Vm = 1.02
		}
		g.Buses = append(g.Buses, b)
	}
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		g.Branches = append(g.Branches, grid.Branch{
			From: parent, To: i, R: 0.01 + 0.02*rng.Float64(),
			X: 0.05 + 0.1*rng.Float64(), Status: true,
		})
	}
	for k := 0; k < n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.Branches = append(g.Branches, grid.Branch{
			From: a, To: b, R: 0.01, X: 0.05 + 0.2*rng.Float64(), Status: true,
		})
	}
	var load float64
	for i := 1; i < n; i++ {
		if g.Buses[i].Type != grid.PQ {
			continue
		}
		pd := 0.02 + 0.05*rng.Float64()
		g.Buses[i].Pd = pd
		g.Buses[i].Qd = pd * 0.3
		load += pd
	}
	var pv []int
	for i := range g.Buses {
		if g.Buses[i].Type == grid.PV {
			pv = append(pv, i)
		}
	}
	for _, i := range pv {
		g.Buses[i].Pg = 0.7 * load / float64(len(pv))
	}
	return g
}

// TestSolveACSparseDenseParity: forcing the sparse path on grids the
// dense path also solves must agree to tight tolerance — the two paths
// share formulas and differ only in the inner linear solver.
func TestSolveACSparseDenseParity(t *testing.T) {
	for _, n := range []int{12, 35, 60} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := randMeshedGrid(rng, n)
		dense, err := SolveAC(g, Options{FlatStart: true, Solver: SolverDense})
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		sparse, err := SolveAC(g, Options{FlatStart: true, Solver: SolverSparse})
		if err != nil {
			t.Fatalf("n=%d sparse: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(dense.Vm[i]-sparse.Vm[i]) > 1e-7 || math.Abs(dense.Va[i]-sparse.Va[i]) > 1e-7 {
				t.Fatalf("n=%d bus %d: dense (%.12f, %.12f) vs sparse (%.12f, %.12f)",
					n, i, dense.Vm[i], dense.Va[i], sparse.Vm[i], sparse.Va[i])
			}
		}
	}
}

func TestSolveDCSparseDenseParity(t *testing.T) {
	for _, n := range []int{12, 35, 60} {
		rng := rand.New(rand.NewSource(int64(n) + 100))
		g := randMeshedGrid(rng, n)
		dense, err := SolveDCWith(g, SolverDense)
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		sparse, err := SolveDCWith(g, SolverSparse)
		if err != nil {
			t.Fatalf("n=%d sparse: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(dense.Va[i]-sparse.Va[i]) > 1e-9 {
				t.Fatalf("n=%d bus %d: dense angle %.15f vs sparse %.15f", n, i, dense.Va[i], sparse.Va[i])
			}
		}
	}
}

// TestSolverAutoDispatch pins the dispatch rule: below the threshold
// SolverAuto is the dense path bit for bit; at or above it, the sparse
// path bit for bit.
func TestSolverAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	small := randMeshedGrid(rng, 30)
	auto, err := SolveAC(small, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SolveAC(small, Options{FlatStart: true, Solver: SolverDense})
	if err != nil {
		t.Fatal(err)
	}
	for i := range auto.Vm {
		if auto.Vm[i] != dense.Vm[i] || auto.Va[i] != dense.Va[i] {
			t.Fatalf("small-grid auto dispatch deviated from dense at bus %d", i)
		}
	}

	big := randMeshedGrid(rng, SparseBusThreshold)
	autoBig, err := SolveAC(big, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sparseBig, err := SolveAC(big, Options{FlatStart: true, Solver: SolverSparse})
	if err != nil {
		t.Fatal(err)
	}
	for i := range autoBig.Vm {
		if autoBig.Vm[i] != sparseBig.Vm[i] || autoBig.Va[i] != sparseBig.Va[i] {
			t.Fatalf("large-grid auto dispatch deviated from sparse at bus %d", i)
		}
	}

	dcAuto, err := SolveDC(big)
	if err != nil {
		t.Fatal(err)
	}
	dcSparse, err := SolveDCWith(big, SolverSparse)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dcAuto.Va {
		if dcAuto.Va[i] != dcSparse.Va[i] {
			t.Fatalf("large-grid DC auto dispatch deviated from sparse at bus %d", i)
		}
	}
}

// TestSparseACPowerBalance: the sparse solution must satisfy the
// physics, not just match the dense solver — check scheduled
// injections at every bus of a threshold-sized grid.
func TestSparseACPowerBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randMeshedGrid(rng, SparseBusThreshold+10)
	sol, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Mismatch >= 1e-8 {
		t.Fatalf("mismatch %v not below tolerance", sol.Mismatch)
	}
	ybus := g.Ybus()
	n := g.N()
	for i := 0; i < n; i++ {
		if g.Buses[i].Type != grid.PQ {
			continue
		}
		var sum complex128
		for j := 0; j < n; j++ {
			vj := complex(sol.Vm[j]*math.Cos(sol.Va[j]), sol.Vm[j]*math.Sin(sol.Va[j]))
			sum += ybus.At(i, j) * vj
		}
		vi := complex(sol.Vm[i]*math.Cos(sol.Va[i]), sol.Vm[i]*math.Sin(sol.Va[i]))
		s := vi * complex(real(sum), -imag(sum))
		wantP := g.Buses[i].Pg - g.Buses[i].Pd
		wantQ := g.Buses[i].Qg - g.Buses[i].Qd
		if math.Abs(real(s)-wantP) > 1e-7 || math.Abs(imag(s)-wantQ) > 1e-7 {
			t.Fatalf("bus %d injection (%v) != scheduled (%v, %v)", i, s, wantP, wantQ)
		}
	}
}
