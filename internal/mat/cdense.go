package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CDense is a row-major dense matrix of complex128 values, used for bus
// admittance (Ybus) matrices in the AC power-flow solver.
type CDense struct {
	rows, cols int
	data       []complex128
}

// NewCDense returns an r-by-c zero complex matrix.
func NewCDense(r, c int) *CDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &CDense{rows: r, cols: c, data: make([]complex128, r*c)}
}

// Rows returns the number of rows.
func (m *CDense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CDense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *CDense) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *CDense) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *CDense) Add(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *CDense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *CDense) Clone() *CDense {
	d := make([]complex128, len(m.data))
	copy(d, m.data)
	return &CDense{rows: m.rows, cols: m.cols, data: d}
}

// MulVec returns the matrix-vector product m*x.
func (m *CDense) MulVec(x []complex128) []complex128 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: CDense.MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// CLU holds a complex LU factorization with partial pivoting.
type CLU struct {
	lu  *CDense
	piv []int
}

// FactorCLU computes the LU factorization of a square complex matrix with
// partial pivoting (by modulus).
func FactorCLU(a *CDense) (*CLU, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorCLU requires square matrix, got %dx%d", a.rows, a.cols)
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		mx := cmplx.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.data[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 || math.IsNaN(mx) { //gridlint:ignore floatcmp LAPACK-style exact-zero pivot column means structurally singular
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = m
			if m == 0 { //gridlint:ignore floatcmp exact-zero multiplier skip; near-zero still eliminates correctly
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &CLU{lu: lu, piv: piv}, nil
}

// Solve solves A*x = b for a single complex right-hand side.
func (f *CLU) Solve(b []complex128) ([]complex128, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: CLU.Solve rhs length %d != %d", len(b), n)
	}
	x := make([]complex128, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		var s complex128
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 { //gridlint:ignore floatcmp LAPACK-style exact-zero diagonal means singular back-substitution
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
