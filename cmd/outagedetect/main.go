// Command outagedetect trains the robust subspace detector on a dataset
// produced by outagegen and evaluates it: per-line identification
// accuracy and false-alarm rate under a chosen missing-data pattern.
//
// Usage:
//
//	outagedetect -data ieee14.json [-pattern none|outage|random|cluster] [-k 3]
//
// The dataset is split into training and test windows; the detector
// never sees the test samples during training.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/pmunet"
)

func main() {
	dataPath := flag.String("data", "", "dataset JSON from outagegen (required)")
	pattern := flag.String("pattern", "none", "missing-data pattern: none, outage, random, cluster")
	k := flag.Int("k", 3, "missing points for the random pattern")
	clusters := flag.Int("clusters", 0, "PDC clusters (default max(3, N/10))")
	trainFrac := flag.Float64("train", 0.7, "training fraction of each sample window")
	seed := flag.Int64("seed", 1, "seed for splits and random masks")
	saveModel := flag.String("save-model", "", "write the trained detector as a versioned model artifact")
	loadModel := flag.String("load-model", "", "evaluate a saved model artifact instead of training")
	verbose := flag.Bool("v", false, "print per-line results")
	flag.Parse()

	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataPath, *pattern, *k, *clusters, *trainFrac, *seed, *saveModel, *loadModel, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "outagedetect:", err)
		os.Exit(1)
	}
}

func run(dataPath, pattern string, k, clusters int, trainFrac float64, seed int64, saveModel, loadModel string, verbose bool) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	name, err := dataset.SystemName(f)
	_ = f.Close() // read-only; a close error cannot lose data
	if err != nil {
		return err
	}
	g, err := cases.Load(name)
	if err != nil {
		return err
	}
	f, err = os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	full, err := dataset.ReadJSON(f, g)
	if err != nil {
		return err
	}

	// Train/test split per scenario window.
	train := &dataset.Data{G: g, Outages: map[grid.Line]*dataset.Set{}}
	test := &dataset.Data{G: g, Outages: map[grid.Line]*dataset.Set{}}
	train.Normal, test.Normal = full.Normal.Split(trainFrac, seed)
	for _, e := range full.ValidLines {
		tr, te := full.Outages[e].Split(trainFrac, seed+int64(e))
		if tr.T() == 0 || te.T() == 0 {
			continue
		}
		train.Outages[e] = tr
		test.Outages[e] = te
		train.ValidLines = append(train.ValidLines, e)
		test.ValidLines = append(test.ValidLines, e)
	}
	if len(train.ValidLines) == 0 {
		return fmt.Errorf("no outage cases survive the split; increase -steps in outagegen")
	}

	if clusters <= 0 {
		clusters = g.N() / 10
		if clusters < 3 {
			clusters = 3
		}
	}
	var det *detect.Detector
	if loadModel != "" {
		if det, err = readDetector(loadModel); err != nil {
			return err
		}
		if det.Grid().N() != g.N() {
			return fmt.Errorf("model %s has %d buses, dataset %s has %d", loadModel, det.Grid().N(), g.Name, g.N())
		}
	} else {
		nw, err := pmunet.Build(g, clusters)
		if err != nil {
			return err
		}
		if det, err = detect.Train(train, nw, detect.Config{}); err != nil {
			return err
		}
		if saveModel != "" {
			if err := writeDetector(det, saveModel); err != nil {
				return err
			}
			fmt.Printf("model    saved to %s\n", saveModel)
		}
	}
	nw := det.Network()

	rng := rand.New(rand.NewSource(seed + 13))
	maskFor := func(e grid.Line) pmunet.Mask {
		switch pattern {
		case "none":
			return nil
		case "outage":
			return nw.OutageLocationMask(e)
		case "random":
			a, b := g.Endpoints(e)
			return nw.RandomMask(k, []int{a, b}, rng)
		case "cluster":
			a, _ := g.Endpoints(e)
			return nw.ClusterMask(nw.ClusterOf(a))
		default:
			return nil
		}
	}
	if pattern != "none" && pattern != "outage" && pattern != "random" && pattern != "cluster" {
		return fmt.Errorf("unknown pattern %q", pattern)
	}

	var total metrics.Accumulator
	for _, e := range test.ValidLines {
		var acc metrics.Accumulator
		truth := []grid.Line{e}
		for _, s := range test.Outages[e].Samples {
			if m := maskFor(e); m != nil {
				s = s.WithMask(m)
			}
			r, err := det.Detect(s)
			if err != nil {
				return err
			}
			acc.Add(truth, r.Lines)
			total.Add(truth, r.Lines)
		}
		if verbose {
			a, b := g.Endpoints(e)
			fmt.Printf("line %3d (%3d-%-3d): %s\n", e, g.Buses[a].ID, g.Buses[b].ID, acc.String())
		}
	}
	// Normal samples: false-alarm behaviour.
	var normal metrics.Accumulator
	for _, s := range test.Normal.Samples {
		r, err := det.Detect(s)
		if err != nil {
			return err
		}
		normal.Add(nil, r.Lines)
	}

	fmt.Printf("system   %s  (pattern=%s, %d test cases)\n", g.Name, pattern, len(test.ValidLines))
	fmt.Printf("outages  %s\n", total.String())
	fmt.Printf("normal   %s\n", normal.String())
	return nil
}

// writeDetector snapshots the trained detector into the versioned,
// fingerprinted artifact format.
func writeDetector(det *detect.Detector, path string) error {
	m, err := det.Snapshot()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readDetector rebuilds a detector from a saved artifact, verifying
// version, fingerprint, and structure.
func readDetector(path string) (*detect.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := detect.DecodeModel(f)
	if err != nil {
		return nil, err
	}
	return detect.FromModel(m)
}
