// Package stream provides the online layer the paper's "timely outage
// detection" story needs: PMU samples arrive one at a time at the
// control center, the detector scores each, and a debouncer turns the
// per-sample decisions into confirmed events with a measured detection
// latency. Missing measurements are an expected part of the stream —
// samples carry availability masks end to end.
package stream

import (
	"errors"
	"fmt"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
)

// Event is a confirmed outage event emitted by the monitor.
type Event struct {
	// Seq is the stream sequence number of the sample that confirmed
	// the event.
	Seq int
	// FirstSeq is the sequence number of the first sample of the streak
	// that led to confirmation — Seq-FirstSeq+1 samples of latency.
	FirstSeq int
	// Lines is the identified outage set at confirmation time.
	Lines []grid.Line
	// Score is the deviation energy of the confirming sample.
	Score float64
}

// Latency returns the number of samples between onset of the detected
// streak and confirmation.
func (e Event) Latency() int { return e.Seq - e.FirstSeq + 1 }

// Config tunes the monitor.
type Config struct {
	// Confirm is the number of consecutive outage-positive samples
	// required before an event is emitted (default 3). PMU glitches are
	// one sample long; real outages persist.
	Confirm int
	// Cooldown is the number of samples after an event during which no
	// new event is emitted (default 10), so one outage is not reported
	// once per sample forever.
	Cooldown int
}

func (c Config) withDefaults() Config {
	if c.Confirm <= 0 {
		c.Confirm = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10
	}
	return c
}

// Monitor consumes a PMU sample stream and emits debounced outage
// events. It is not safe for concurrent use; feed it from one goroutine
// (the fan-in point is the PDC/control-center collector, see comm).
type Monitor struct {
	det *detect.Detector
	cfg Config

	seq       int
	streak    int
	streakSeq int
	cooldown  int
}

// NewMonitor wraps a trained detector.
func NewMonitor(det *detect.Detector, cfg Config) (*Monitor, error) {
	if det == nil {
		return nil, errors.New("stream: nil detector")
	}
	return &Monitor{det: det, cfg: cfg.withDefaults()}, nil
}

// Ingest scores one sample. It returns a non-nil Event exactly when the
// sample confirms a new outage event.
func (m *Monitor) Ingest(s dataset.Sample) (*Event, error) {
	m.seq++
	r, err := m.det.Detect(s)
	if err != nil {
		return nil, fmt.Errorf("stream: sample %d: %w", m.seq, err)
	}
	if m.cooldown > 0 {
		m.cooldown--
	}
	if !r.Outage {
		m.streak = 0
		return nil, nil
	}
	if m.streak == 0 {
		m.streakSeq = m.seq
	}
	m.streak++
	if m.streak >= m.cfg.Confirm && m.cooldown == 0 {
		m.cooldown = m.cfg.Cooldown
		m.streak = 0
		ev := &Event{
			Seq:      m.seq,
			FirstSeq: m.streakSeq,
			Lines:    append([]grid.Line(nil), r.Lines...),
			Score:    r.DeviationEnergy,
		}
		return ev, nil
	}
	return nil, nil
}

// Seq returns the number of samples ingested so far.
func (m *Monitor) Seq() int { return m.seq }

// Pending returns the current unconfirmed positive streak length.
func (m *Monitor) Pending() int { return m.streak }

// Reset clears streak and cooldown state (e.g. after operator action).
func (m *Monitor) Reset() {
	m.streak = 0
	m.cooldown = 0
}

// Run ingests every sample from in and sends confirmed events to out,
// closing out when in is exhausted. The first detection error aborts
// the run and is returned.
func (m *Monitor) Run(in <-chan dataset.Sample, out chan<- Event) error {
	defer close(out)
	for s := range in {
		ev, err := m.Ingest(s)
		if err != nil {
			return err
		}
		if ev != nil {
			out <- *ev
		}
	}
	return nil
}
