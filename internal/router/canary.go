package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/client"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/obs"
)

// Differ runs the canary evaluation: a deterministic fraction of
// detect traffic is mirrored to the canary pool (the primary always
// answers the caller), and each pair of responses is compared — bytes,
// detection quality per labelled scenario (IA/FA per the paper's
// Eq. 12), and numeric score divergence. The accumulated evidence
// becomes the CanaryReport that gates promotion.
type Differ struct {
	candidate string
	percent   int // 0..100: fraction of detect requests mirrored
	minPairs  uint64
	tolerance float64

	counter      atomic.Uint64 // deterministic selection, no randomness
	requests     atomic.Uint64
	canaryServed atomic.Uint64
	pairs        atomic.Uint64
	identical    atomic.Uint64
	mismatched   atomic.Uint64
	primaryErrs  atomic.Uint64
	canaryErrs   atomic.Uint64

	divergence *obs.Histogram // |Δ deviation energy| per report pair
	divMax     atomicFloatMax

	mu        sync.Mutex
	scenarios map[string]*scenarioAcc

	wg sync.WaitGroup
}

// scenarioAcc accumulates both arms of one labelled scenario.
type scenarioAcc struct {
	truth   []int
	primary metrics.Accumulator
	canary  metrics.Accumulator
	pErrs   uint64
	cErrs   uint64
}

// atomicFloatMax is a lock-free running maximum over float64 bits.
type atomicFloatMax struct{ bits atomic.Uint64 }

func (m *atomicFloatMax) observe(v float64) {
	for {
		cur := m.bits.Load()
		if v <= math.Float64frombits(cur) {
			return
		}
		if m.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicFloatMax) load() float64 { return math.Float64frombits(m.bits.Load()) }

// newDiffer wires the differ onto the router's registry. percent is
// clamped to [0,100]; minPairs ≤ 0 defaults to 1.
func newDiffer(candidate string, percent int, minPairs int, tolerance float64, reg *obs.Registry) *Differ {
	if percent < 0 {
		percent = 0
	}
	if percent > 100 {
		percent = 100
	}
	if minPairs <= 0 {
		minPairs = 1
	}
	if tolerance < 0 {
		tolerance = 0
	}
	d := &Differ{
		candidate: candidate,
		percent:   percent,
		minPairs:  uint64(minPairs),
		tolerance: tolerance,
		scenarios: map[string]*scenarioAcc{},
	}
	if reg != nil {
		d.divergence = reg.ValueHistogram(metricDivergence, "absolute deviation-energy divergence between primary and canary reports")
	}
	return d
}

// selects reports whether this request is mirrored to the canary:
// requests are numbered and the first percent of every hundred are
// selected, so the split is deterministic and exact over any window of
// 100 requests.
func (d *Differ) selects() bool {
	if d == nil || d.percent == 0 {
		return false
	}
	n := d.counter.Add(1) - 1
	return int(n%100) < d.percent
}

// noteRequest counts one routed detect request.
func (d *Differ) noteRequest() {
	if d != nil {
		d.requests.Add(1)
	}
}

// shadow mirrors one detect request to the canary pool in the
// background and diffs the pair when the copy completes. primary is
// the response the caller was served. The goroutine detaches from the
// request's cancellation (the caller is already answered) but keeps
// its values (trace ID), and gets its own deadline
// (Config.ShadowTimeout): a canary backend that accepts the connection
// and never answers must count as a canary error, not pin the
// goroutine forever and wedge DrainShadow (report, promote, Close).
func (d *Differ) shadow(ctx context.Context, r *Router, pathAndQuery, contentType string, body []byte, scenario, truth string, primary *client.RawResponse) {
	if d == nil || r.canary == nil {
		return
	}
	d.canaryServed.Add(1)
	bodyCopy := append([]byte(nil), body...)
	bg, cancel := context.WithTimeout(context.WithoutCancel(ctx), r.cfg.ShadowTimeout)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer cancel()
		canary, _, err := r.forward(bg, r.canary, pathAndQuery, contentType, bodyCopy)
		if err != nil {
			d.pairs.Add(1)
			d.canaryErrs.Add(1)
			d.scoreErr(scenario, truth, false)
			return
		}
		d.compare(scenario, truth, primary, canary)
	}()
}

// DrainShadow blocks until every outstanding shadow copy has been
// diffed — tests and the promotion path call this so the report is
// complete before it is read.
func (d *Differ) DrainShadow() {
	if d != nil {
		d.wg.Wait()
	}
}

// compare diffs one primary/canary response pair.
func (d *Differ) compare(scenario, truth string, primary, canary *client.RawResponse) {
	d.pairs.Add(1)
	pOK, cOK := primary.Status == 200, canary.Status == 200
	if !pOK {
		d.primaryErrs.Add(1)
		d.scoreErr(scenario, truth, true)
	}
	if !cOK {
		d.canaryErrs.Add(1)
		d.scoreErr(scenario, truth, false)
	}
	if !pOK || !cOK {
		return
	}
	if bytes.Equal(primary.Body, canary.Body) {
		d.identical.Add(1)
	} else {
		d.mismatched.Add(1)
	}

	var pResp, cResp api.DetectResponse
	if json.Unmarshal(primary.Body, &pResp) != nil || json.Unmarshal(canary.Body, &cResp) != nil {
		return
	}
	for i := range pResp.Reports {
		if i >= len(cResp.Reports) {
			break
		}
		p, c := pResp.Reports[i], cResp.Reports[i]
		if p == nil || c == nil {
			continue
		}
		div := math.Abs(p.DeviationEnergy - c.DeviationEnergy)
		d.divergence.ObserveValue(div)
		d.divMax.observe(div)
	}

	truthLines, labelled := parseTruth(truth)
	if scenario == "" || !labelled {
		return
	}
	d.scoreBatch(scenario, truthLines, pResp, cResp)
}

// scoreBatch books both arms' reports against the scenario's
// accumulators.
func (d *Differ) scoreBatch(scenario string, truthLines []int, pResp, cResp api.DetectResponse) {
	d.mu.Lock()
	defer d.mu.Unlock()
	acc := d.scenario(scenario, truthLines)
	for i := range pResp.Reports {
		if i >= len(cResp.Reports) || pResp.Reports[i] == nil || cResp.Reports[i] == nil {
			continue
		}
		acc.primary.Add(truthGrid(truthLines), reportLines(pResp.Reports[i].Lines))
		acc.canary.Add(truthGrid(truthLines), reportLines(cResp.Reports[i].Lines))
	}
}

// scoreErr books an arm error against the scenario (primary arm when
// primaryArm, else canary).
func (d *Differ) scoreErr(scenario, truth string, primaryArm bool) {
	if scenario == "" {
		return
	}
	truthLines, labelled := parseTruth(truth)
	if !labelled {
		truthLines = nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	acc := d.scenario(scenario, truthLines)
	if primaryArm {
		acc.pErrs++
	} else {
		acc.cErrs++
	}
}

// scenario returns (creating on first use) one scenario's accumulator.
// Callers hold d.mu.
func (d *Differ) scenario(name string, truth []int) *scenarioAcc {
	acc := d.scenarios[name]
	if acc == nil {
		acc = &scenarioAcc{truth: truth}
		d.scenarios[name] = acc
	}
	return acc
}

// parseTruth decodes the X-Eval-Truth header: comma-separated line
// indices; an empty list ("none"/"" with the header present) means the
// scenario is normal operation. ok is false when the header is absent.
func parseTruth(h string) (lines []int, ok bool) {
	if h == "" {
		return nil, false
	}
	if h == "none" {
		return nil, true
	}
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, false
		}
		lines = append(lines, n)
	}
	return lines, true
}

func truthGrid(idx []int) []grid.Line {
	out := make([]grid.Line, len(idx))
	for i, n := range idx {
		out[i] = grid.Line(n)
	}
	return out
}

func reportLines(ls []pmuoutage.Line) []grid.Line {
	out := make([]grid.Line, len(ls))
	for i, l := range ls {
		out[i] = grid.Line(l.Index)
	}
	return out
}

// scenarioDiffs snapshots every labelled scenario's per-arm quality,
// sorted by name for a stable report.
func (d *Differ) scenarioDiffs() []api.ScenarioDiff {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.scenarios))
	for name := range d.scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []api.ScenarioDiff
	for _, name := range names {
		acc := d.scenarios[name]
		sd := api.ScenarioDiff{
			Scenario: name,
			Truth:    acc.truth,
			Primary:  api.ArmStats{Detections: acc.primary.N(), Errors: acc.pErrs, IA: acc.primary.IA(), FA: acc.primary.FA()},
			Canary:   api.ArmStats{Detections: acc.canary.N(), Errors: acc.cErrs, IA: acc.canary.IA(), FA: acc.canary.FA()},
		}
		sd.DeltaIA = sd.Canary.IA - sd.Primary.IA
		sd.DeltaFA = sd.Canary.FA - sd.Primary.FA
		out = append(out, sd)
	}
	return out
}

// Report assembles the structured canary evaluation and runs the
// promotion gates: enough pairs, a clean canary arm, and per-scenario
// quality deltas within tolerance (ΔIA ≥ −tol, ΔFA ≤ tol). A byte
// mismatch alone does NOT block promotion — two correct models may
// disagree in low-order bits; the quality gates decide.
func (d *Differ) Report() api.CanaryReport {
	rep := api.CanaryReport{
		Candidate:     d.candidate,
		Requests:      d.requests.Load(),
		CanaryServed:  d.canaryServed.Load(),
		Pairs:         d.pairs.Load(),
		Identical:     d.identical.Load(),
		Mismatched:    d.mismatched.Load(),
		PrimaryErrors: d.primaryErrs.Load(),
		CanaryErrors:  d.canaryErrs.Load(),
	}
	if h := d.divergence; h != nil {
		rep.Divergence = api.DivergenceSummary{
			Count: h.Count(),
			Max:   d.divMax.load(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		if n := h.Count(); n > 0 {
			rep.Divergence.Mean = h.SumSeconds() / float64(n)
		}
	}

	rep.Scenarios = d.scenarioDiffs()

	rep.Promotable = true
	fail := func(format string, args ...any) {
		rep.Promotable = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(format, args...))
	}
	if rep.Pairs < d.minPairs {
		fail("only %d shadow pairs evaluated, need %d", rep.Pairs, d.minPairs)
	}
	if rep.CanaryErrors > 0 {
		fail("canary arm returned %d errors", rep.CanaryErrors)
	}
	for _, sd := range rep.Scenarios {
		if sd.DeltaIA < -d.tolerance {
			fail("scenario %s: IA regressed by %.6f (tolerance %.6f)", sd.Scenario, -sd.DeltaIA, d.tolerance)
		}
		if sd.DeltaFA > d.tolerance {
			fail("scenario %s: FA regressed by %.6f (tolerance %.6f)", sd.Scenario, sd.DeltaFA, d.tolerance)
		}
	}
	return rep
}
