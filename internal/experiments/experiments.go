// Package experiments regenerates every figure of the paper's evaluation
// (§V). Each FigN function returns structured rows that cmd/experiments
// prints as tables and bench_test.go asserts shape properties on. See
// DESIGN.md for the experiment index and the shape targets.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/mlr"
	"pmuoutage/internal/par"
	"pmuoutage/internal/pmunet"
)

// Row is one measured point of a figure.
type Row struct {
	Figure string  // e.g. "fig5"
	System string  // e.g. "ieee14"
	Method string  // "subspace" or "mlr"
	X      float64 // sweep coordinate (group mix, reliability, ...), 0 if unused
	IA     float64
	FA     float64
	N      int // detections aggregated
}

// String formats the row as a stable table line.
func (r Row) String() string {
	return fmt.Sprintf("%-6s %-8s %-9s x=%-6.3f IA=%.4f FA=%.4f n=%d",
		r.Figure, r.System, r.Method, r.X, r.IA, r.FA, r.N)
}

// Config scopes an experiment run.
type Config struct {
	// Systems to evaluate; nil means all four IEEE systems.
	Systems []string
	// TrainSteps is the training window length per scenario (default 40).
	TrainSteps int
	// TestSteps is the number of test realizations per outage case —
	// the paper uses 100; the default is 20 to keep full AC runs in
	// minutes, and cmd/experiments exposes a flag for the paper value.
	TestSteps int
	// Seed drives the whole pipeline.
	Seed int64
	// UseDC switches data generation to the DC approximation (fast mode
	// for tests; the angle channel keeps the same structure).
	UseDC bool
	// Clusters overrides the PDC cluster count; 0 derives max(3, N/10).
	Clusters int
	// Detector/baseline overrides (zero values = package defaults).
	Detect detect.Config
	MLR    mlr.Config
	// Workers bounds the parallelism of a run (0 = GOMAXPROCS): figure
	// rows — one per (system, sweep point) — fan out over workers, and
	// the same count is handed down to data generation and training.
	// Row values and order are identical for every worker count because
	// every row derives its own seeds.
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.Systems) == 0 {
		c.Systems = cases.Names()
	}
	if c.TrainSteps <= 0 {
		c.TrainSteps = 40
	}
	if c.TestSteps <= 0 {
		c.TestSteps = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// clustersForKey returns the cache-key form of the cluster setting.
func (c Config) clustersForKey() int { return c.Clusters }

func (c Config) clustersFor(n int) int {
	if c.Clusters > 0 {
		return c.Clusters
	}
	k := n / 10
	if k < 3 {
		k = 3
	}
	return k
}

// bundle holds everything prepared for one system.
type bundle struct {
	g     *grid.Grid
	nw    *pmunet.Network
	train *dataset.Data
	test  *dataset.Data
	det   *detect.Detector
	clf   *mlr.Classifier
}

// dataCache memoises the expensive power-flow data generation across
// figures: every figure of a run uses the same train/test data for a
// given system, only the detector configuration varies.
var dataCache sync.Map // dataKey -> *cachedData

type dataKey struct {
	system                string
	trainSteps, testSteps int
	seed                  int64
	useDC                 bool
	clusters              int
}

type cachedData struct {
	once  sync.Once
	g     *grid.Grid
	nw    *pmunet.Network
	train *dataset.Data
	test  *dataset.Data
	err   error
}

// prepare builds grid, network, train/test data, the trained detector and
// the MLR baseline for one system. The data generation is cached across
// figures and safe to hit from concurrent rows; training runs per call
// because the detector configuration varies per row.
func (c Config) prepare(ctx context.Context, system string, needMLR bool) (*bundle, error) {
	key := dataKey{system, c.TrainSteps, c.TestSteps, c.Seed, c.UseDC, c.clustersForKey()}
	entry, _ := dataCache.LoadOrStore(key, &cachedData{})
	cd := entry.(*cachedData)
	cd.once.Do(func() {
		g, err := cases.Load(system)
		if err != nil {
			cd.err = err
			return
		}
		nw, err := pmunet.Build(g, c.clustersFor(g.N()))
		if err != nil {
			cd.err = err
			return
		}
		gen := dataset.GenConfig{Steps: c.TrainSteps, Seed: c.Seed, UseDC: c.UseDC, Workers: c.Workers}
		train, err := dataset.GenerateContext(ctx, g, gen)
		if err != nil {
			cd.err = err
			return
		}
		gen.Steps = c.TestSteps
		gen.Seed = c.Seed + 7777
		test, err := dataset.GenerateContext(ctx, g, gen)
		if err != nil {
			cd.err = err
			return
		}
		cd.g, cd.nw, cd.train, cd.test = g, nw, train, test
	})
	if cd.err != nil {
		// A cancelled first caller must not poison the cache for later
		// runs: drop the entry so the next call regenerates.
		if errors.Is(cd.err, context.Canceled) || errors.Is(cd.err, context.DeadlineExceeded) {
			dataCache.CompareAndDelete(key, entry)
		}
		return nil, cd.err
	}
	g, nw, train, test := cd.g, cd.nw, cd.train, cd.test
	dcfg := c.Detect
	dcfg.Workers = c.Workers
	det, err := detect.TrainContext(ctx, train, nw, dcfg)
	if err != nil {
		return nil, err
	}
	b := &bundle{g: g, nw: nw, train: train, test: test, det: det}
	if needMLR {
		clf, err := mlr.Train(train, c.MLR)
		if err != nil {
			return nil, err
		}
		b.clf = clf
	}
	return b, nil
}

// rowJobs runs one job per (system, sweep point) pair over the
// configured workers and concatenates the per-job rows in job order, so
// parallel output is identical to the sequential loop it replaced.
func rowJobs(ctx context.Context, cfg Config, n int, job func(ctx context.Context, i int) ([]Row, error)) ([]Row, error) {
	per, err := par.Map(ctx, cfg.Workers, n, job)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, r := range per {
		rows = append(rows, r...)
	}
	return rows, nil
}

// maskFn produces the missing-data mask for one test detection; nil
// means complete data.
type maskFn func(e grid.Line, rng *rand.Rand) pmunet.Mask

// evalOutages runs every valid outage case's test samples through both
// methods with the given missing-data pattern and accumulates Eq. (12).
// The mask RNG is private to the call, so rows evaluating concurrently
// draw exactly the patterns the sequential loop drew.
func (b *bundle) evalOutages(ctx context.Context, mask maskFn, seed int64) (sub, base metrics.Accumulator, err error) {
	rng := rand.New(rand.NewSource(seed))
	for _, e := range b.test.ValidLines {
		if err := ctx.Err(); err != nil {
			return sub, base, err
		}
		truth := []grid.Line{e}
		for _, s := range b.test.OutageSet(e).Samples {
			smp := s
			if mask != nil {
				smp = s.WithMask(mask(e, rng))
			}
			r, derr := b.det.Detect(smp)
			if derr != nil {
				return sub, base, derr
			}
			sub.Add(truth, r.Lines)
			if b.clf != nil {
				base.Add(truth, b.clf.Classify(smp))
			}
		}
	}
	return sub, base, nil
}

// evalNormal runs normal-operation test samples (|F| = 0 conventions).
func (b *bundle) evalNormal(ctx context.Context, mask maskFn, seed int64) (sub, base metrics.Accumulator, err error) {
	rng := rand.New(rand.NewSource(seed))
	for _, s := range b.test.Normal.Samples {
		if err := ctx.Err(); err != nil {
			return sub, base, err
		}
		smp := s
		if mask != nil {
			smp = s.WithMask(mask(-1, rng))
		}
		r, derr := b.det.Detect(smp)
		if derr != nil {
			return sub, base, derr
		}
		sub.Add(nil, r.Lines)
		if b.clf != nil {
			base.Add(nil, b.clf.Classify(smp))
		}
	}
	return sub, base, nil
}
