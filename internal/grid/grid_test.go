package grid

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// ring returns an n-bus ring grid with uniform impedances and a slack at
// bus 0.
func ring(n int) *Grid {
	g := &Grid{Name: "ring", BaseMVA: 100}
	for i := 0; i < n; i++ {
		b := Bus{ID: i + 1, Type: PQ, Vm: 1}
		if i == 0 {
			b.Type = Slack
		}
		g.Buses = append(g.Buses, b)
	}
	for i := 0; i < n; i++ {
		g.Branches = append(g.Branches, Branch{
			From: i, To: (i + 1) % n, R: 0.01, X: 0.1, Status: true,
		})
	}
	return g
}

func TestBusTypeString(t *testing.T) {
	if PQ.String() != "PQ" || PV.String() != "PV" || Slack.String() != "slack" {
		t.Fatal("BusType.String mismatch")
	}
	if BusType(9).String() == "" {
		t.Fatal("unknown BusType must still format")
	}
}

func TestBranchAdmittance(t *testing.T) {
	br := Branch{R: 3, X: 4}
	y := br.Admittance()
	// 1/(3+4i) = (3-4i)/25
	if cmplx.Abs(y-complex(0.12, -0.16)) > 1e-15 {
		t.Fatalf("Admittance = %v", y)
	}
	if (&Branch{}).Admittance() != 0 {
		t.Fatal("zero-impedance branch must yield zero admittance")
	}
}

func TestCloneDeep(t *testing.T) {
	g := ring(4)
	c := g.Clone()
	c.Buses[0].Pd = 99
	c.Branches[0].Status = false
	if g.Buses[0].Pd == 99 || !g.Branches[0].Status {
		t.Fatal("Clone is shallow")
	}
}

func TestWithoutLine(t *testing.T) {
	g := ring(5)
	ng := g.WithoutLine(2)
	if ng.Branches[2].Status {
		t.Fatal("line still in service")
	}
	if !g.Branches[2].Status {
		t.Fatal("original grid mutated")
	}
	// A ring stays connected after one removal...
	if !ng.Connected() {
		t.Fatal("ring minus one line must stay connected")
	}
	// ...but not after two adjacent removals isolating a node.
	ng2 := g.WithoutLines([]Line{0, 1})
	if ng2.Connected() {
		t.Fatal("expected islanding")
	}
}

func TestSlackIndex(t *testing.T) {
	g := ring(3)
	idx, err := g.SlackIndex()
	if err != nil || idx != 0 {
		t.Fatalf("SlackIndex = %d, %v", idx, err)
	}
	g.Buses[1].Type = Slack
	if _, err := g.SlackIndex(); err == nil {
		t.Fatal("expected error for two slacks")
	}
	g.Buses[0].Type = PQ
	g.Buses[1].Type = PQ
	if _, err := g.SlackIndex(); err == nil {
		t.Fatal("expected error for no slack")
	}
}

func TestNeighborsAndLines(t *testing.T) {
	g := ring(5)
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 4 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	lines := g.LinesOf(0)
	if len(lines) != 2 {
		t.Fatalf("LinesOf(0) = %v", lines)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d", g.Degree(0))
	}
	// Out-of-service lines disappear from adjacency.
	ng := g.WithoutLine(lines[0])
	if ng.Degree(0) != 1 {
		t.Fatalf("Degree after outage = %d", ng.Degree(0))
	}
}

func TestSubgraphConnected(t *testing.T) {
	g := ring(6)
	if !g.SubgraphConnected([]int{1, 2, 3}) {
		t.Fatal("contiguous ring arc must be connected")
	}
	if g.SubgraphConnected([]int{0, 3}) {
		t.Fatal("opposite ring nodes are not adjacent-connected")
	}
	if !g.SubgraphConnected(nil) || !g.SubgraphConnected([]int{2}) {
		t.Fatal("empty and singleton sets are connected")
	}
}

func TestHopDistances(t *testing.T) {
	g := ring(6)
	d := g.HopDistances(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("HopDistances = %v, want %v", d, want)
		}
	}
	ng := g.WithoutLines([]Line{0, 5}) // isolate bus 0
	d = ng.HopDistances(1)
	if d[0] != -1 {
		t.Fatalf("unreachable bus must be -1, got %d", d[0])
	}
}

func TestFindLineEndpoints(t *testing.T) {
	g := ring(4)
	e := g.FindLine(1, 2)
	if e < 0 {
		t.Fatal("line not found")
	}
	a, b := g.Endpoints(e)
	if !(a == 1 && b == 2) && !(a == 2 && b == 1) {
		t.Fatalf("Endpoints = (%d,%d)", a, b)
	}
	if g.FindLine(0, 2) != -1 {
		t.Fatal("nonexistent line must be -1")
	}
	// Reverse direction lookup.
	if g.FindLine(2, 1) != e {
		t.Fatal("FindLine must be symmetric")
	}
}

func TestYbusRowSumsZeroWithoutShunts(t *testing.T) {
	// With no shunts, taps, or charging, each Ybus row sums to zero
	// (Laplacian structure).
	g := ring(5)
	y := g.Ybus()
	for i := 0; i < 5; i++ {
		var s complex128
		for j := 0; j < 5; j++ {
			s += y.At(i, j)
		}
		if cmplx.Abs(s) > 1e-12 {
			t.Fatalf("row %d sum = %v", i, s)
		}
	}
}

func TestYbusSymmetricWithoutTaps(t *testing.T) {
	g := ring(5)
	y := g.Ybus()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if cmplx.Abs(y.At(i, j)-y.At(j, i)) > 1e-12 {
				t.Fatalf("Ybus not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestYbusTapAsymmetry(t *testing.T) {
	g := ring(3)
	g.Branches[0].Tap = 0.95
	y := g.Ybus()
	if cmplx.Abs(y.At(0, 1)-y.At(1, 0)) > 1e-12 {
		t.Fatal("real tap (no shift) keeps Ybus symmetric")
	}
	// Diagonal scaling differs: from-side sees y/t^2.
	g2 := ring(3)
	y2 := g2.Ybus()
	if cmplx.Abs(y.At(0, 0)-y2.At(0, 0)) < 1e-12 {
		t.Fatal("tap must change the from-side diagonal")
	}
}

func TestYbusShuntAndCharging(t *testing.T) {
	g := ring(3)
	g.Buses[1].Bs = 0.5
	g.Branches[0].B = 0.2
	y := g.Ybus()
	// Bus 1 diagonal gains j0.5 shunt plus j0.1 charging from branch 0.
	base := ring(3).Ybus().At(1, 1)
	if cmplx.Abs(y.At(1, 1)-(base+complex(0, 0.6))) > 1e-12 {
		t.Fatalf("shunt/charging not applied: %v vs %v", y.At(1, 1), base)
	}
}

func TestLaplacianProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := ring(n)
		// Random chords with random reactances.
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g.Branches = append(g.Branches, Branch{
				From: a, To: b, X: 0.05 + rng.Float64(), Status: true,
			})
		}
		l := g.Laplacian()
		// Rows sum to zero; matrix symmetric; diagonal nonnegative.
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += l.At(i, j)
				if math.Abs(l.At(i, j)-l.At(j, i)) > 1e-12 {
					return false
				}
			}
			if math.Abs(s) > 1e-9 || l.At(i, i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	g := ring(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g.Clone()
	bad.Branches[0].From = 99
	if bad.Validate() == nil {
		t.Fatal("expected endpoint range error")
	}
	bad = g.Clone()
	bad.Branches[0].To = bad.Branches[0].From
	if bad.Validate() == nil {
		t.Fatal("expected self-loop error")
	}
	bad = g.Clone()
	bad.Branches[0].R, bad.Branches[0].X = 0, 0
	if bad.Validate() == nil {
		t.Fatal("expected zero-impedance error")
	}
	bad = g.Clone()
	for e := range bad.Branches {
		if bad.Branches[e].From == 2 || bad.Branches[e].To == 2 {
			bad.Branches[e].Status = false
		}
	}
	if bad.Validate() == nil {
		t.Fatal("expected connectivity error")
	}
	empty := &Grid{Name: "empty"}
	if empty.Validate() == nil {
		t.Fatal("expected no-bus error")
	}
}

func TestTotalLoad(t *testing.T) {
	g := ring(3)
	g.Buses[1].Pd = 0.5
	g.Buses[2].Pd = 0.25
	if got := g.TotalLoad(); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("TotalLoad = %v", got)
	}
}

func TestAlgebraicConnectivity(t *testing.T) {
	g := ring(8)
	l2, err := g.AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	// Ring of 8 with weights 1/X = 10: lambda_2 = 10 * 2(1-cos(2pi/8)).
	want := 10 * 2 * (1 - math.Cos(2*math.Pi/8))
	if math.Abs(l2-want) > 1e-6 {
		t.Fatalf("Fiedler value = %v, want %v", l2, want)
	}
	// Removing one ring line weakens but keeps connectivity.
	weak, err := g.WithoutLine(0).AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if weak <= 0 || weak >= l2 {
		t.Fatalf("weakened Fiedler value = %v, want in (0, %v)", weak, l2)
	}
	// Islanding drives it to zero.
	split, err := g.WithoutLines([]Line{0, 4}).AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(split) > 1e-8 {
		t.Fatalf("islanded Fiedler value = %v, want 0", split)
	}
	// Degenerate sizes error.
	tiny := &Grid{Name: "tiny", Buses: []Bus{{ID: 1, Type: Slack}}}
	if _, err := tiny.AlgebraicConnectivity(); err == nil {
		t.Fatal("expected error for 1-bus grid")
	}
}
