package experiments

import (
	"context"
	"errors"
)

// Figures is the figure registry shared by cmd/experiments and the
// fleet-worker handler (internal/expserve): every runnable figure of
// the paper's evaluation, by its table name.
var Figures = map[string]func(context.Context, Config) ([]Row, error){
	"fig4":     Fig4,
	"fig5":     Fig5,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"ablation": Ablation,
	"recovery": Recovery,
	"multi":    MultiOutage,
	"all":      All,
}

// ErrUnknownFigure reports a figure name outside the Figures registry.
var ErrUnknownFigure = errors.New("experiments: unknown figure")
