package mat

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCDense(rng *rand.Rand, n int) *CDense {
	m := NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		m.Add(i, i, complex(float64(n)+2, 0)) // well conditioned
	}
	return m
}

func TestCDenseAtSet(t *testing.T) {
	m := NewCDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 3+4i)
	m.Add(1, 2, 1+1i)
	if got := m.At(1, 2); got != 4+5i {
		t.Fatalf("At = %v, want 4+5i", got)
	}
}

func TestCDenseCloneIndependence(t *testing.T) {
	m := NewCDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestCLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randCDense(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		f, err := FactorCLU(a)
		if err != nil {
			return false
		}
		x, err := f.Solve(b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range b {
			if cmplx.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1+1i)
	a.Set(0, 1, 2+2i)
	a.Set(1, 0, 2+2i)
	a.Set(1, 1, 4+4i)
	if _, err := FactorCLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestCLUNonSquare(t *testing.T) {
	if _, err := FactorCLU(NewCDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCLUPivoting(t *testing.T) {
	// Zero leading diagonal forces a pivot swap.
	a := NewCDense(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	f, err := FactorCLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]complex128{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-3) > 1e-12 || cmplx.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestCDenseMulVecKnown(t *testing.T) {
	m := NewCDense(2, 2)
	m.Set(0, 0, 1i)
	m.Set(0, 1, 1)
	m.Set(1, 0, 2)
	m.Set(1, 1, -1i)
	got := m.MulVec([]complex128{1 + 1i, 2})
	want := []complex128{1i*(1+1i) + 2, 2*(1+1i) - 2i}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
