package pmunet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/grid"
)

func TestBuildPartition(t *testing.T) {
	g := cases.IEEE30()
	nw, err := Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d", nw.NumClusters())
	}
	// Every bus in exactly one cluster.
	seen := make([]int, g.N())
	for c, cl := range nw.Clusters {
		if len(cl) == 0 {
			t.Errorf("cluster %d empty", c)
		}
		for _, v := range cl {
			seen[v]++
			if nw.ClusterOf(v) != c {
				t.Errorf("ClusterOf(%d) = %d, want %d", v, nw.ClusterOf(v), c)
			}
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("bus %d appears in %d clusters", v, n)
		}
	}
}

// TestFromClustersRestoresPartition: the model-decode constructor must
// reproduce the exact partition Build produced, and reject partitions
// that do not cover every bus exactly once.
func TestFromClustersRestoresPartition(t *testing.T) {
	g := cases.IEEE30()
	built, err := Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromClusters(g, built.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if nw.ClusterOf(v) != built.ClusterOf(v) {
			t.Fatalf("ClusterOf(%d) = %d, Build said %d", v, nw.ClusterOf(v), built.ClusterOf(v))
		}
	}
	// The restored partition is a copy: mutating it must not alias the
	// caller's slices.
	nw.Clusters[0][0] = built.Clusters[0][0]

	for _, bad := range [][][]int{
		{},       // empty partition
		{{0, 1}}, // misses buses
		{built.Clusters[0], built.Clusters[0], built.Clusters[1]}, // duplicates
		{{-1}},    // out of range
		{{g.N()}}, // out of range
	} {
		if _, err := FromClusters(g, bad); err == nil {
			t.Fatalf("FromClusters accepted invalid partition %v", bad)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := cases.IEEE14()
	if _, err := Build(g, 0); err == nil {
		t.Fatal("expected error for zero clusters")
	}
	if _, err := Build(g, 99); err == nil {
		t.Fatal("expected error for more clusters than buses")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := cases.IEEE57()
	a, _ := Build(g, 4)
	b, _ := Build(g, 4)
	for c := range a.Clusters {
		if len(a.Clusters[c]) != len(b.Clusters[c]) {
			t.Fatal("partition not deterministic")
		}
		for i := range a.Clusters[c] {
			if a.Clusters[c][i] != b.Clusters[c][i] {
				t.Fatal("partition not deterministic")
			}
		}
	}
}

func TestMaskBasics(t *testing.T) {
	m := NoneMissing(5)
	if m.AnyMissing() || m.MissingCount() != 0 {
		t.Fatal("fresh mask must be all available")
	}
	m[2] = true
	if !m.AnyMissing() || m.MissingCount() != 1 {
		t.Fatal("mask accounting wrong")
	}
	av := m.Available()
	if len(av) != 4 {
		t.Fatalf("Available = %v", av)
	}
	for _, v := range av {
		if v == 2 {
			t.Fatal("missing bus listed as available")
		}
	}
	c := m.Clone()
	c[0] = true
	if m[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestOutageLocationMask(t *testing.T) {
	g := cases.IEEE14()
	nw, _ := Build(g, 3)
	e := grid.Line(0)
	a, b := g.Endpoints(e)
	m := nw.OutageLocationMask(e)
	if !m[a] || !m[b] {
		t.Fatal("endpoints must be missing")
	}
	if m.MissingCount() != 2 {
		t.Fatalf("MissingCount = %d, want 2", m.MissingCount())
	}
}

func TestOutageNeighborhoodMask(t *testing.T) {
	g := cases.IEEE14()
	nw, _ := Build(g, 3)
	e := grid.Line(0)
	a, b := g.Endpoints(e)
	m := nw.OutageNeighborhoodMask(e)
	for _, v := range append(g.Neighbors(a), g.Neighbors(b)...) {
		if !m[v] {
			t.Errorf("neighbor %d not masked", v)
		}
	}
	if !m[a] || !m[b] {
		t.Fatal("endpoints must be masked")
	}
}

func TestRandomMaskRespectsExclusionsAndCount(t *testing.T) {
	g := cases.IEEE30()
	nw, _ := Build(g, 4)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		k := int(seed%7+7) % 7
		excl := []int{0, 5, 10}
		m := nw.RandomMask(k, excl, rng)
		if m.MissingCount() != k {
			return false
		}
		for _, v := range excl {
			if m[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Requesting more than the pool clamps.
	m := nw.RandomMask(1000, nil, rng)
	if m.MissingCount() != g.N() {
		t.Fatalf("clamped count = %d, want %d", m.MissingCount(), g.N())
	}
}

func TestClusterMask(t *testing.T) {
	g := cases.IEEE30()
	nw, _ := Build(g, 4)
	m := nw.ClusterMask(1)
	if m.MissingCount() != len(nw.Clusters[1]) {
		t.Fatal("cluster mask size mismatch")
	}
	for _, v := range nw.Clusters[1] {
		if !m[v] {
			t.Fatalf("cluster member %d not masked", v)
		}
	}
}

func TestUnion(t *testing.T) {
	a := Mask{true, false, false}
	b := Mask{false, false, true}
	u := Union(a, b)
	if !u[0] || u[1] || !u[2] {
		t.Fatalf("Union = %v", u)
	}
	if Union() != nil {
		t.Fatal("empty union must be nil")
	}
	// Inputs untouched.
	if a[2] {
		t.Fatal("Union mutated input")
	}
}

func TestReliabilityMath(t *testing.T) {
	rel := Reliability{RPMU: 0.99, RLink: 0.98}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	q := rel.DeviceAvailability()
	if math.Abs(q-0.9702) > 1e-12 {
		t.Fatalf("q = %v", q)
	}
	r := rel.SystemReliability(14)
	if math.Abs(r-math.Pow(0.9702, 14)) > 1e-12 {
		t.Fatalf("r = %v", r)
	}
	if (Reliability{RPMU: 0, RLink: 1}).Validate() == nil {
		t.Fatal("expected validation error")
	}
}

func TestFromSystemReliabilityRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 0.01 + 0.98*rng.Float64()
		l := 1 + rng.Intn(200)
		rel, err := FromSystemReliability(r, l)
		if err != nil {
			return false
		}
		return math.Abs(rel.SystemReliability(l)-r) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromSystemReliability(0, 5); err == nil {
		t.Fatal("expected error for r=0")
	}
	if _, err := FromSystemReliability(0.5, 0); err == nil {
		t.Fatal("expected error for L=0")
	}
}

func TestSampleMaskMatchesReliability(t *testing.T) {
	g := cases.IEEE14()
	nw, _ := Build(g, 3)
	rel := Reliability{RPMU: 0.95, RLink: 1}
	rng := rand.New(rand.NewSource(11))
	var missing, total int
	for k := 0; k < 5000; k++ {
		m := nw.SampleMask(rel, rng)
		missing += m.MissingCount()
		total += len(m)
	}
	frac := float64(missing) / float64(total)
	if math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("empirical missing fraction = %.4f, want ~0.05", frac)
	}
}

func TestPatternProbability(t *testing.T) {
	rel := Reliability{RPMU: 0.9, RLink: 1}
	m := Mask{false, true, false}
	p := PatternProbability(m, rel)
	want := 0.9 * 0.1 * 0.9
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
}

func TestEnumeratePatternsSumsToOne(t *testing.T) {
	// Small ad-hoc network: probabilities over all 2^L patterns must
	// integrate to 1 (the weights of Eq. 13).
	g := miniGrid(8)
	nw, _ := Build(g, 2)
	rel := Reliability{RPMU: 0.93, RLink: 0.99}
	var sum float64
	count := 0
	err := nw.EnumeratePatterns(rel, func(m Mask, p float64) bool {
		sum += p
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 256 {
		t.Fatalf("pattern count = %d, want 256", count)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probability sum = %v", sum)
	}
}

func TestEnumeratePatternsRefusesLargeL(t *testing.T) {
	g := cases.IEEE30()
	nw, _ := Build(g, 4)
	err := nw.EnumeratePatterns(Reliability{RPMU: 0.9, RLink: 1}, func(Mask, float64) bool { return true })
	if err == nil {
		t.Fatal("expected refusal for L=30")
	}
}

func TestEnumeratePatternsEarlyStop(t *testing.T) {
	g := miniGrid(6)
	nw, _ := Build(g, 2)
	count := 0
	nw.EnumeratePatterns(Reliability{RPMU: 0.9, RLink: 1}, func(Mask, float64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop after %d calls, want 5", count)
	}
}

// miniGrid builds a small ring for enumeration tests.
func miniGrid(n int) *grid.Grid {
	g := &grid.Grid{Name: "mini", BaseMVA: 100}
	for i := 0; i < n; i++ {
		b := grid.Bus{ID: i + 1, Type: grid.PQ, Vm: 1}
		if i == 0 {
			b.Type = grid.Slack
		}
		g.Buses = append(g.Buses, b)
	}
	for i := 0; i < n; i++ {
		g.Branches = append(g.Branches, grid.Branch{From: i, To: (i + 1) % n, R: 0.01, X: 0.1, Status: true})
	}
	return g
}
