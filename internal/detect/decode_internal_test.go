package detect

import (
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/pmunet"
)

// TestDecodeStagesUnderMissingOutageData breaks the Fig. 7 scenario into
// pipeline stages so a regression points at the failing stage: the
// outage gate, the proximity-rule candidate set, or the line filter.
func TestDecodeStagesUnderMissingOutageData(t *testing.T) {
	g := cases.IEEE14()
	train, _ := dataset.Generate(g, dataset.GenConfig{Steps: 30, Seed: 11})
	nw, _ := pmunet.Build(g, 3)
	det, err := Train(train, nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	test, _ := dataset.Generate(g, dataset.GenConfig{Steps: 5, Seed: 999})
	var nSamp, gate, bothEnds, hit, hitGivenEnds int
	for _, e := range test.ValidLines {
		a, b := g.Endpoints(e)
		for _, smp := range test.OutageSet(e).Samples {
			s := smp.WithMask(nw.OutageLocationMask(e))
			r, err := det.Detect(s)
			if err != nil {
				t.Fatal(err)
			}
			nSamp++
			if !r.Outage {
				continue
			}
			gate++
			hasA, hasB := false, false
			for _, c := range r.Candidates {
				if c == a {
					hasA = true
				}
				if c == b {
					hasB = true
				}
			}
			found := false
			for _, l := range r.Lines {
				if l == e {
					found = true
				}
			}
			if hasA && hasB {
				bothEnds++
				if found {
					hitGivenEnds++
				}
			}
			if found {
				hit++
			}
		}
	}
	t.Logf("samples=%d gate-pass=%d both-endpoints-in-candidates=%d hit=%d hit|ends=%d",
		nSamp, gate, bothEnds, hit, hitGivenEnds)
	if float64(gate) < 0.85*float64(nSamp) {
		t.Errorf("gate passed only %d/%d masked outage samples", gate, nSamp)
	}
	if float64(hit) < 0.6*float64(nSamp) {
		t.Errorf("true line decoded in only %d/%d masked outage samples", hit, nSamp)
	}
}
