GO ?= go

.PHONY: build vet lint test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gridlint: the repo's own analyzers (cmd/gridlint, internal/analysis).
# Suppress an intentional finding with
#   //gridlint:ignore <analyzer> <reason>
lint:
	$(GO) run ./cmd/gridlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark smoke: catches benchmarks that panic or no
# longer compile without paying for stable timings.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The tier-1 gate (see ROADMAP.md): build, vet, gridlint, race tests,
# benchmark smoke.
verify: build vet lint race bench
