// Package service is the sharded multi-system detection layer: it owns
// N independently trained pmuoutage.Systems (one per grid case /
// region), routes batch-detect and streaming-ingest requests to the
// right shard, coalesces small concurrent requests into one detector
// batch per shard, and enforces per-request deadlines with bounded
// queues and load-shedding — reject-with-retry rather than unbounded
// buffering.
//
// Degradation is graceful and per shard: a shard whose detector is
// still training, has failed training, or was killed answers with
// ErrUnavailable (retryable) while every other shard keeps serving, and
// a per-shard supervisor rebuilds failed shards with exponential
// backoff. Coalescing never changes results: a batch is the
// concatenation of its requests' samples, System.DetectBatch assigns
// report i to sample i over the deterministic internal/par pool, and
// each request gets back exactly its slice — byte-identical to calling
// DetectBatch directly on the same samples.
//
// Errors are typed: ErrUnknownShard, ErrUnavailable, ErrOverloaded,
// ErrClosed, and ErrConfig here plus the facade's ErrBadSample pass
// through errors.Is, and Retryable tells transports which conditions
// deserve a Retry-After. cmd/outaged is the JSON-over-HTTP front end.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/wire"
)

// Typed errors of the service layer. Everything the service itself
// mints wraps one of these; facade errors (pmuoutage.ErrBadSample, ...)
// pass through untouched.
var (
	// ErrConfig reports an invalid Config passed to New.
	ErrConfig = errors.New("service: invalid config")
	// ErrUnknownShard reports a request routed to a shard name the
	// service does not own.
	ErrUnknownShard = errors.New("service: unknown shard")
	// ErrUnavailable reports a shard that exists but cannot answer right
	// now — still training, failed, or killed. Retryable: the supervisor
	// is rebuilding it.
	ErrUnavailable = errors.New("service: shard unavailable")
	// ErrOverloaded reports load-shedding: the shard's pending-sample
	// queue is at its bound. Retryable after backoff.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrClosed reports a request against a closed service.
	ErrClosed = errors.New("service: closed")
)

// Retryable reports whether err is a transient service condition the
// caller should retry after a short backoff (the HTTP layer adds a
// Retry-After header exactly when this is true).
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrOverloaded)
}

// ShardSpec names one shard and the system it serves — typically one
// grid case or region per shard.
type ShardSpec struct {
	Name string
	// Opts configures training when no Model is pinned (and remains the
	// retrain recipe for Reload with a nil model).
	Opts pmuoutage.Options
	// Model, when non-nil, is a pre-trained artifact the shard boots
	// from instead of training — the serve-from-artifact path. Rebuilds
	// after Kill reuse it.
	Model *pmuoutage.Model
	// Replicas is the number of concurrent serve loops (queues +
	// batchers) sharing the shard's model; 0 means 1. Replicas change
	// throughput, never results: each request is routed whole to the
	// least-loaded replica and scored by the same immutable model.
	Replicas int
}

// Config configures New.
type Config struct {
	// Shards lists the systems the service owns. Names must be unique
	// and non-empty.
	Shards []ShardSpec
	// MaxBatch caps how many samples one coalesced detector call may
	// contain (default 64).
	MaxBatch int
	// QueueDepth bounds the samples a shard may hold admitted-but-
	// unanswered before it sheds load with ErrOverloaded (default 256).
	QueueDepth int
	// Confirm and Cooldown configure the per-shard streaming monitors
	// (stream defaults when 0).
	Confirm, Cooldown int
	// RestartBackoff is the supervisor's initial delay before rebuilding
	// a failed or killed shard; it doubles per consecutive failure up to
	// MaxRestartBackoff. Defaults 100ms and 10s.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration

	// Tracer, when non-nil, records queue/coalesce/detect stage spans
	// for requests whose context carries a trace ID; the HTTP layer
	// starts the root span and serves retained traces at /debug/traces.
	// Like Logger, it is observational only: nil disables tracing with
	// zero allocations on the hot path, and detector outputs are byte-
	// identical either way.
	Tracer *obs.Tracer

	// Logger, when non-nil, receives structured span and lifecycle logs
	// (per-request detect spans at debug, shard state changes at info).
	// Logging is observational only: a nil Logger disables it entirely —
	// zero allocations on the hot path — and detector outputs are byte-
	// identical either way. Metrics are always recorded; they are lock-
	// free atomics with no logger dependency.
	Logger *slog.Logger

	// OnEvent, when non-nil, receives every confirmed outage event the
	// stream-ingest path emits, tagged with the shard and the wire
	// sequence number of the confirming frame. It is called from the
	// shard's stream consumer goroutine: keep it fast and do not call
	// back into the service from it. Events from Ingest (the synchronous
	// API) are returned to the caller instead and never pass through
	// here.
	OnEvent func(shard string, seq uint32, ev *pmuoutage.Event)

	// batchHook, when set, observes every coalesced batch right before
	// it runs (test seam for deterministic queue-pressure tests).
	batchHook func(shard string, samples int)
	// streamHook, when set, intercepts frames popped by the stream
	// consumer instead of scoring them (test seam for alloc-pin tests;
	// the hook owns each frame it receives).
	streamHook func(shard string, f *wire.Frame)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.MaxRestartBackoff <= 0 {
		c.MaxRestartBackoff = 10 * time.Second
	}
	return c
}

// Service routes detection traffic across its shards. All methods are
// safe for concurrent use.
type Service struct {
	cfg    Config
	ctx    context.Context // service lifetime; done => closed
	cancel context.CancelFunc
	wg     sync.WaitGroup
	stats  *Stats

	mu     sync.Mutex
	closed bool
	shards map[string]*shard
	order  []string // spec order, for stable listings
}

// New validates cfg and starts the service: every shard immediately
// begins training in the background under its supervisor, and requests
// to a shard that is not ready yet fail fast with ErrUnavailable. ctx
// bounds the whole service — cancelling it is equivalent to Close.
func New(ctx context.Context, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("%w: no shards", ErrConfig)
	}
	names := map[string]bool{}
	for _, spec := range cfg.Shards {
		if spec.Name == "" {
			return nil, fmt.Errorf("%w: shard with empty name", ErrConfig)
		}
		if names[spec.Name] {
			return nil, fmt.Errorf("%w: duplicate shard %q", ErrConfig, spec.Name)
		}
		if spec.Replicas < 0 {
			return nil, fmt.Errorf("%w: shard %q has negative replica count %d", ErrConfig, spec.Name, spec.Replicas)
		}
		names[spec.Name] = true
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Service{
		cfg:    cfg,
		ctx:    sctx,
		cancel: cancel,
		stats:  newStats(obs.NewRegistry()),
		shards: map[string]*shard{},
	}
	for _, spec := range cfg.Shards {
		sh := newShard(s, spec)
		s.shards[spec.Name] = sh
		s.order = append(s.order, spec.Name)
		s.wg.Add(1)
		go sh.supervise(sctx)
	}
	return s, nil
}

// shard resolves a shard name, failing with ErrUnknownShard or
// ErrClosed.
func (s *Service) shard(name string) (*shard, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	sh := s.shards[name]
	if sh == nil {
		return nil, fmt.Errorf("%w: %q (shards: %v)", ErrUnknownShard, name, s.order)
	}
	return sh, nil
}

// DetectBatch routes samples to the named shard and returns one report
// per sample in input order. Small concurrent requests coalesce into
// one detector batch, but the response for each request is exactly what
// the shard's System.DetectBatch returns for its samples alone. The
// request is dropped (and answered with the context's error) if ctx
// expires while it is queued; once the batch is running it completes.
func (s *Service) DetectBatch(ctx context.Context, shardName string, samples []pmuoutage.Sample) ([]*pmuoutage.Report, error) {
	sh, err := s.shard(shardName)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, nil
	}
	return sh.detect(ctx, samples)
}

// Ingest feeds one sample to the named shard's streaming monitor and
// returns a non-nil Event exactly when the sample confirms a new
// outage. Ingest is serialised per shard (the monitor is stateful); the
// monitor's streak state resets when the shard restarts.
func (s *Service) Ingest(ctx context.Context, shardName string, sample pmuoutage.Sample) (*pmuoutage.Event, error) {
	sh, err := s.shard(shardName)
	if err != nil {
		return nil, err
	}
	return sh.ingest(ctx, sample)
}

// System returns the named shard's trained system for direct library
// use — the service and library callers share one API surface. It fails
// with ErrUnavailable while the shard is not ready.
func (s *Service) System(name string) (*pmuoutage.System, error) {
	sh, err := s.shard(name)
	if err != nil {
		return nil, err
	}
	if sys := sh.system(); sys != nil {
		return sys, nil
	}
	return nil, sh.availErr()
}

// Reload hot-swaps the named shard onto a new model. With a non-nil
// model it must match the serving grid (bus count); with nil the shard
// retrains from its spec's Options in the calling goroutine — in both
// cases the shard keeps serving the old model until the instant of the
// swap, queued requests are never dropped, and every batch is scored by
// exactly one model (old or new, never mixed). The swapped-in model is
// pinned for future supervisor rebuilds. Reloading a shard that is not
// ready fails with its availability error; the caller retries once the
// supervisor has it serving again.
func (s *Service) Reload(ctx context.Context, shardName string, m *pmuoutage.Model) error {
	sh, err := s.shard(shardName)
	if err != nil {
		return err
	}
	if m == nil {
		m, err = pmuoutage.TrainModelContext(ctx, sh.spec.Opts)
		if err != nil {
			return err
		}
	}
	if err := sh.reload(m); err != nil {
		return err
	}
	if lg := sh.logger; lg != nil {
		lg.LogAttrs(ctx, slog.LevelInfo, "model reloaded",
			slog.String(obs.AttrTraceID, obs.TraceID(ctx)),
			slog.Uint64(obs.AttrGeneration, sh.gen.Load()),
			slog.String("model", m.Fingerprint()))
	}
	return nil
}

// ApplyPatch hot-swaps the named shard onto the patched version of the
// model it is serving right now. The patch is fingerprint-pinned: a
// shard serving any model but the patch's base fails with
// pmuoutage.ErrPatchBase and keeps its current model. The splice
// itself is pure in-memory state surgery — no simulation, no SVD —
// so the swap completes in milliseconds regardless of grid size, and
// the same old-or-new-never-mixed reload guarantee applies. The
// patched model is pinned for future supervisor rebuilds, exactly as
// if it had been reloaded whole.
func (s *Service) ApplyPatch(ctx context.Context, shardName string, p *pmuoutage.Patch) error {
	sh, err := s.shard(shardName)
	if err != nil {
		return err
	}
	sys := sh.system()
	if sys == nil {
		return sh.availErr()
	}
	m, err := p.Apply(sys.Model())
	if err != nil {
		return err
	}
	if err := sh.reload(m); err != nil {
		return err
	}
	if lg := sh.logger; lg != nil {
		lg.LogAttrs(ctx, slog.LevelInfo, "model patched",
			slog.String(obs.AttrTraceID, obs.TraceID(ctx)),
			slog.Uint64(obs.AttrGeneration, sh.gen.Load()),
			slog.String("patch", p.Fingerprint()),
			slog.String("model", m.Fingerprint()))
	}
	return nil
}

// Kill marks a ready shard failed: its queue drains with ErrUnavailable
// and the supervisor rebuilds it after the restart backoff. Requests to
// every other shard are unaffected. Killing a shard that is not ready
// is a no-op.
func (s *Service) Kill(name string) error {
	sh, err := s.shard(name)
	if err != nil {
		return err
	}
	sh.kill(fmt.Errorf("%w: killed by operator", ErrUnavailable))
	return nil
}

// Ready reports whether at least one shard is serving.
func (s *Service) Ready() bool {
	for _, st := range s.Shards() {
		if st.State == StateReady.String() {
			return true
		}
	}
	return false
}

// ShardStatus is one shard's public state snapshot. The definition
// lives in the shared api package (it is the GET /v1/shards wire
// element); the alias keeps service-level callers working.
type ShardStatus = api.ShardStatus

// Shards snapshots every shard's status in configuration order.
func (s *Service) Shards() []ShardStatus {
	shards := s.allShards()
	out := make([]ShardStatus, len(shards))
	for i, sh := range shards {
		out[i] = sh.status()
	}
	return out
}

// allShards copies the shard list in configuration order.
func (s *Service) allShards() []*shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := make([]*shard, 0, len(s.order))
	for _, name := range s.order {
		shards = append(shards, s.shards[name])
	}
	return shards
}

// peek resolves a shard without the closed check (nil if unknown).
func (s *Service) peek(name string) *shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[name]
}

// Metrics returns the service's metrics registry — the same cells
// Stats snapshots, exposable as Prometheus text via the registry's
// ServeHTTP (cmd/outaged mounts it at /metrics).
func (s *Service) Metrics() *obs.Registry {
	return s.stats.reg
}

// Tracer returns the service's span tracer (nil when tracing is
// disabled) — the HTTP layer roots request spans on it and serves its
// retained traces.
func (s *Service) Tracer() *obs.Tracer {
	return s.cfg.Tracer
}

// Counters returns the named shard's live counter cells (created on
// first use), letting transports record into shard-scoped metrics —
// the HTTP layer uses this for the encode-stage histogram.
func (s *Service) Counters(name string) *ShardCounters {
	return s.stats.shard(name)
}

// Stats snapshots the per-shard counters (requests, batch sizes, queue
// depth, shed count, latency).
func (s *Service) Stats() map[string]ShardSnapshot {
	out := s.stats.snapshot()
	for name, snap := range out {
		if sh := s.peek(name); sh != nil {
			snap.QueueDepth = int(sh.depth.Load())
			out[name] = snap
		}
	}
	return out
}

// Close stops every supervisor and batcher, answers queued requests
// with ErrClosed, and waits for all service goroutines to exit. It is
// idempotent.
func (s *Service) Close() {
	s.markClosed()
	s.cancel()
	s.wg.Wait()
}

func (s *Service) markClosed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
