package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
)

func TestUnionProbFormsAgree(t *testing.T) {
	// Inclusion–exclusion must equal the closed product form for
	// independent events — the identity behind Eq. (7).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		return math.Abs(UnionProbIE(ps)-UnionProb(ps)) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionProbEdgeCases(t *testing.T) {
	if UnionProb(nil) != 0 || UnionProbIE(nil) != 0 {
		t.Fatal("empty union must be 0")
	}
	if UnionProb([]float64{1, 0.2}) != 1 {
		t.Fatal("certain event must dominate")
	}
	if got := UnionProb([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("UnionProb = %v, want 0.75", got)
	}
	// Out-of-range inputs clamp.
	if got := UnionProb([]float64{2, -1}); got != 1 {
		t.Fatalf("clamped UnionProb = %v", got)
	}
	// Large n falls back to the product form without exploding.
	big := make([]float64, 30)
	for i := range big {
		big[i] = 0.01
	}
	if got := UnionProbIE(big); math.Abs(got-UnionProb(big)) > 1e-12 {
		t.Fatalf("large-n fallback mismatch: %v", got)
	}
}

func TestUnionProbMonotone(t *testing.T) {
	// Adding an event can only increase the union probability.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		return UnionProb(append(ps, rng.Float64())) >= UnionProb(ps)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func ieee14Data(t *testing.T, steps int) *dataset.Data {
	t.Helper()
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: steps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitEllipsesAllNodes(t *testing.T) {
	d := ieee14Data(t, 10)
	ells, err := FitEllipses(d.Normal, 1.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ells) != 14 {
		t.Fatalf("got %d ellipses", len(ells))
	}
	// Every normal training point must be inside its own ellipse.
	for k, e := range ells {
		for _, s := range d.Normal.Samples {
			vm, va := s.Phasor2D(k)
			if !e.Contains(vm, va) {
				t.Fatalf("node %d: training point outside ellipse", k)
			}
		}
	}
}

func TestFitEllipsesNeedsSamples(t *testing.T) {
	if _, err := FitEllipses(&dataset.Set{}, 1.1, false); err == nil {
		t.Fatal("expected error for empty set")
	}
}

func TestCaseCapabilityEndpointsHigh(t *testing.T) {
	// For an outage of line e, the endpoint nodes must detect it far
	// better than a node with no electrical stress... in a small grid
	// nearly everyone sees it, so assert endpoints are near 1.
	d := ieee14Data(t, 12)
	ells, err := FitEllipses(d.Normal, 1.1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a line whose endpoints are both PQ buses: generator buses
	// hold their voltage by definition and are weak self-detectors.
	for _, e := range d.ValidLines {
		a, b := d.G.Endpoints(e)
		if d.G.Buses[a].Type != grid.PQ || d.G.Buses[b].Type != grid.PQ {
			continue
		}
		pa := CaseCapability(ells[a], d.Outages[e], d.Normal, a)
		pb := CaseCapability(ells[b], d.Outages[e], d.Normal, b)
		if pa < 0.9 || pb < 0.9 {
			t.Errorf("line %d endpoint capabilities %.2f/%.2f, want ~1", e, pa, pb)
		}
		return
	}
	t.Skip("no PQ-PQ line in valid cases")
}

func TestCaseCapabilityEmptySets(t *testing.T) {
	d := ieee14Data(t, 4)
	ells, _ := FitEllipses(d.Normal, 1.1, false)
	if CaseCapability(ells[0], &dataset.Set{}, d.Normal, 0) != 0 {
		t.Fatal("empty outage set must give 0")
	}
	if CaseCapability(ells[0], d.Outages[d.ValidLines[0]], &dataset.Set{}, 0) != 0 {
		t.Fatal("empty normal set must give 0")
	}
}

func TestLearnCapabilitiesShapeAndRange(t *testing.T) {
	d := ieee14Data(t, 10)
	caps, err := LearnCapabilities(d, 1.1, false)
	if err != nil {
		t.Fatal(err)
	}
	n := d.G.N()
	if len(caps.P) != n || len(caps.Ellipses) != n {
		t.Fatal("capability matrix shape wrong")
	}
	for i := 0; i < n; i++ {
		if len(caps.P[i]) != n {
			t.Fatalf("row %d has %d entries", i, len(caps.P[i]))
		}
		for k := 0; k < n; k++ {
			if caps.P[i][k] < 0 || caps.P[i][k] > 1 {
				t.Fatalf("P[%d][%d] = %v out of [0,1]", i, k, caps.P[i][k])
			}
		}
	}
}

func TestLearnCapabilitiesSelfDetection(t *testing.T) {
	// "Intuitively node i and its immediate neighbors should have the
	// highest detection accuracy in p_i" (§IV-B): check node i itself
	// scores highly for its own failures.
	d := ieee14Data(t, 12)
	caps, err := LearnCapabilities(d, 1.1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.G.N(); i++ {
		if d.G.Degree(i) == 0 || d.G.Buses[i].Type != grid.PQ {
			// Generator buses regulate their own voltage and so see
			// little local signature; the paper's intuition targets
			// monitored load nodes.
			continue
		}
		// Skip nodes none of whose lines yielded valid cases.
		hasCase := false
		for _, e := range d.ValidLines {
			a, b := d.G.Endpoints(e)
			if a == i || b == i {
				hasCase = true
			}
		}
		if !hasCase {
			continue
		}
		if caps.P[i][i] < 0.9 {
			t.Errorf("node %d self-capability %.2f, want ~1", i, caps.P[i][i])
		}
	}
}
