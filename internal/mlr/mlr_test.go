package mlr

import (
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
)

func trainData(t *testing.T, steps int, seed int64) *dataset.Data {
	t.Helper()
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: steps, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrainValidation(t *testing.T) {
	g := cases.IEEE14()
	if _, err := Train(&dataset.Data{G: g, Normal: &dataset.Set{}}, Config{}); err == nil {
		t.Fatal("expected error for empty training data")
	}
}

func TestClassifierCompleteDataAccuracy(t *testing.T) {
	// The paper's Fig. 5: with complete data, MLR is highly accurate.
	train := trainData(t, 20, 11)
	test := trainData(t, 5, 999)
	c, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes() != len(train.ValidLines)+1 {
		t.Fatalf("classes = %d, want %d", c.Classes(), len(train.ValidLines)+1)
	}
	var acc metrics.Accumulator
	for _, e := range test.ValidLines {
		truth := []grid.Line{e}
		for _, s := range test.OutageSet(e).Samples {
			acc.Add(truth, c.Classify(s))
		}
	}
	if acc.IA() < 0.8 {
		t.Errorf("complete-data MLR IA = %.3f, want >= 0.8", acc.IA())
	}
	t.Logf("MLR complete data: %s", acc.String())
}

func TestClassifierNormalSamples(t *testing.T) {
	train := trainData(t, 40, 11)
	test := trainData(t, 5, 999)
	c, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	right := 0
	for _, smp := range test.Normal.Samples {
		got, p := c.ClassifyWithProb(smp)
		if len(got) == 0 {
			right++
		} else {
			t.Logf("normal sample -> %v (p=%.3f)", got, p)
		}
	}
	if right < len(test.Normal.Samples)*4/5 {
		t.Errorf("normal samples misclassified: %d/%d right", right, len(test.Normal.Samples))
	}
}

func TestClassifierDegradesWithMissingOutageData(t *testing.T) {
	// The paper's central claim (Fig. 7): MLR collapses when the outage
	// endpoints' data are missing, because its per-scenario signatures
	// depend on exactly those features.
	train := trainData(t, 20, 11)
	test := trainData(t, 5, 999)
	c, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var complete, missing metrics.Accumulator
	for _, e := range test.ValidLines {
		truth := []grid.Line{e}
		a, b := test.G.Endpoints(e)
		for _, s := range test.OutageSet(e).Samples {
			complete.Add(truth, c.Classify(s))
			mask := make([]bool, test.G.N())
			mask[a], mask[b] = true, true
			missing.Add(truth, c.Classify(s.WithMask(mask)))
		}
	}
	t.Logf("MLR complete: %s / missing endpoints: %s", complete.String(), missing.String())
	if missing.IA() > complete.IA()-0.15 {
		t.Errorf("MLR should degrade markedly: complete IA %.3f vs missing IA %.3f",
			complete.IA(), missing.IA())
	}
}

func TestClassifyWithProbSane(t *testing.T) {
	train := trainData(t, 10, 11)
	c, err := Train(train, Config{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, p := c.ClassifyWithProb(train.Normal.Samples[0])
	if p <= 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
}

func TestChannelConfig(t *testing.T) {
	train := trainData(t, 10, 11)
	c, err := Train(train, Config{Channel: dataset.Stacked, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(train.Normal.Samples[0]); len(got) != 0 {
		t.Logf("stacked-channel classify = %v (training-sample sanity only)", got)
	}
}
