package analysis

import "strings"

// IgnoreAudit keeps the suppression ledger honest. An ignore directive
// is a standing exception to the gate, and exceptions rot: the code
// they excused gets rewritten, the analyzer they name gets renamed, and
// the directive lingers, silently ready to swallow the next real
// finding on that line. This analyzer flags directives that name an
// analyzer gridlint doesn't have (typo or rename — the directive can
// never match); the runner completes the audit with match bookkeeping,
// flagging directives that suppressed nothing on the current tree
// (stale) — that half needs cross-analyzer results, so it lives in
// RunPackageAll rather than here. Missing reasons are rejected by the
// directive parser itself. Intentionally kept directives are annotated
// //gridlint:ignore ignoreaudit <reason>.
var IgnoreAudit = &Analyzer{
	Name: "ignoreaudit",
	Doc:  "flag ignore directives that name unknown analyzers or no longer suppress anything",
}

// Run is attached in init: runIgnoreAudit consults the registry (All,
// via KnownAnalyzer), and the registry lists IgnoreAudit — a direct
// initializer would be an initialization cycle.
func init() { IgnoreAudit.Run = runIgnoreAudit }

func runIgnoreAudit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					continue // malformed: reported by the directive parser
				}
				if !KnownAnalyzer(name) {
					pass.Report(c.Pos(), "ignore directive names unknown analyzer %q (known analyzers: gridlint -list)", name)
				}
			}
		}
	}
	return nil
}
