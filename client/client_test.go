package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/api"
)

// writeJSON and jsonDecode are tiny test-server helpers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func jsonDecode(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}

func testClient(t *testing.T, ts *httptest.Server) *Client {
	t.Helper()
	c, err := New(Config{
		BaseURL:     ts.URL,
		MaxRetries:  3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty BaseURL: got %v", err)
	}
	c, err := New(Config{BaseURL: "http://x/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.BaseURL != "http://x" {
		t.Fatalf("BaseURL not normalised: %q", c.cfg.BaseURL)
	}
}

// TestDetectSuccess: a plain 200 round trip decodes the reports and
// sends the expected request body.
func TestDetectSuccess(t *testing.T) {
	var gotBody api.DetectRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/detect" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		decodeInto(t, r, &gotBody)
		writeJSON(w, http.StatusOK, api.DetectResponse{Shard: gotBody.Shard, Reports: []*pmuoutage.Report{{Outage: true}}})
	}))
	defer ts.Close()

	samples := []pmuoutage.Sample{{Vm: []float64{1}, Va: []float64{0}}}
	reports, err := testClient(t, ts).Detect(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Outage {
		t.Fatalf("reports = %+v", reports)
	}
	if gotBody.Shard != "east" || !reflect.DeepEqual(gotBody.Samples, samples) {
		t.Fatalf("request body = %+v", gotBody)
	}
}

// TestRetryOn503ThenSuccess: retryable statuses are retried and the
// Retry-After header is honoured (0 seconds here, to keep the test
// fast, but the header must be parsed and accepted).
func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "training", "retryable": true})
		case 2:
			writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": "overloaded", "retryable": true})
		default:
			writeJSON(w, http.StatusOK, api.DetectResponse{Reports: []*pmuoutage.Report{{}}})
		}
	}))
	defer ts.Close()

	if _, err := testClient(t, ts).Detect(context.Background(), "east", nil); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// TestTerminalStatusDoesNotRetry: a 400 fails immediately with
// ErrRequest after exactly one attempt.
func TestTerminalStatusDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad sample"})
	}))
	defer ts.Close()

	_, err := testClient(t, ts).Detect(context.Background(), "east", nil)
	if !errors.Is(err, ErrRequest) {
		t.Fatalf("got %v, want ErrRequest", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
}

// TestExhaustedRetries: persistent 503s exhaust the budget and fail
// with ErrExhausted carrying the last failure.
func TestExhaustedRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "down"})
	}))
	defer ts.Close()

	_, err := testClient(t, ts).Detect(context.Background(), "east", nil)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if n := calls.Load(); n != 4 { // 1 try + 3 retries
		t.Fatalf("server saw %d calls, want 4", n)
	}
}

// TestContextCancelsBackoff: a context cancelled while the client waits
// between attempts aborts the loop with the context error.
func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "down"})
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 5, BaseBackoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Detect(ctx, "east", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff wait")
	}
}

// TestReload: the reload call posts the shard and path and decodes the
// generation/fingerprint reply.
func TestReload(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/reload" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		var req api.ReloadRequest
		decodeInto(t, r, &req)
		if req.Shard != "east" || req.Path != "/tmp/m.json" {
			t.Errorf("request = %+v", req)
		}
		writeJSON(w, http.StatusOK, ReloadResult{Shard: req.Shard, Generation: 2, Model: "abc"})
	}))
	defer ts.Close()

	res, err := testClient(t, ts).Reload(context.Background(), "east", "/tmp/m.json")
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.Model != "abc" {
		t.Fatalf("result = %+v", res)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":        0,
		"1":       time.Second,
		" 2 ":     2 * time.Second,
		"-3":      0,
		"later":   0,
		"1.5":     0,
		"0":       0,
		"Thu, 01": 0,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

func decodeInto(t *testing.T, r *http.Request, v any) {
	t.Helper()
	if err := jsonDecode(r, v); err != nil {
		t.Fatal(err)
	}
}
