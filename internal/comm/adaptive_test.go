package comm

import (
	"sync"
	"testing"
	"time"
)

// frame builds a one-bus cluster frame for direct-ingest tests.
func frame(pdc, seq, bus int) ClusterFrame {
	return ClusterFrame{PDC: pdc, Seq: seq, Buses: []int{bus}, Vm: []float64{1}, Va: []float64{0}}
}

// backdate shifts a pending assembly's start time so the next frame
// observes a deterministic latency.
func backdate(t *testing.T, c *Collector, seq int, by time.Duration) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.pending[seq]
	if a == nil {
		t.Fatalf("no pending assembly for seq %d", seq)
	}
	a.started = a.started.Add(-by)
}

func TestAdaptiveDeadlineTracksLatency(t *testing.T) {
	const maxD = 400 * time.Millisecond
	c, err := NewCollector(2, "127.0.0.1:0", maxD)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWithin(t, 2*time.Second, "collector close", c.Close)

	if d := c.AdaptiveDeadline(); d != maxD {
		t.Fatalf("deadline with no history = %v, want the configured max %v", d, maxD)
	}

	// PDC 1 joins an assembly that opened 100ms ago: its EWMA seeds at
	// ~100ms and the deadline drops to ~2×100ms.
	c.ingest(frame(0, 1, 0))
	backdate(t, c, 1, 100*time.Millisecond)
	c.ingest(frame(1, 1, 1)) // completes seq 1
	if d := c.AdaptiveDeadline(); d < 150*time.Millisecond || d > 250*time.Millisecond {
		t.Fatalf("deadline after one 100ms observation = %v, want ~200ms", d)
	}

	// A run of fast arrivals decays the EWMA until the floor clamps it.
	for seq := 2; seq < 25; seq++ {
		c.ingest(frame(0, seq, 0))
		c.ingest(frame(1, seq, 1))
	}
	if d, want := c.AdaptiveDeadline(), maxD/8; d != want {
		t.Fatalf("deadline after fast traffic = %v, want the floor %v", d, want)
	}
}

// TestAdaptiveDeadlineEmitsEarly: once PDC latencies are known to be
// small, a straggling partial assembly is emitted on the adaptive
// deadline — far before the configured maximum.
func TestAdaptiveDeadlineEmitsEarly(t *testing.T) {
	const maxD = 2 * time.Second
	c, err := NewCollector(2, "127.0.0.1:0", maxD)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWithin(t, 2*time.Second, "collector close", c.Close)

	// Warm both PDC estimators with fast completions.
	for seq := 0; seq < 10; seq++ {
		c.ingest(frame(0, seq, 0))
		c.ingest(frame(1, seq, 1))
	}
	for range [10]int{} {
		<-c.Samples()
	}

	start := time.Now()
	c.ingest(frame(0, 99, 0)) // bus 1 never arrives
	select {
	case got := <-c.Samples():
		if got.Seq != 99 || got.Sample.Mask == nil {
			t.Fatalf("unexpected emission %+v", got)
		}
		// The adaptive floor is maxD/8 = 250ms; the configured deadline
		// is 2s. Arriving well under the max proves adaptation.
		if waited := time.Since(start); waited >= maxD {
			t.Fatalf("straggler waited the full max deadline (%v)", waited)
		}
	case <-time.After(maxD):
		t.Fatal("straggler never emitted")
	}
}

func TestLateFrameDoesNotReopenEmittedSeq(t *testing.T) {
	c, err := NewCollector(2, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWithin(t, 2*time.Second, "collector close", c.Close)

	c.ingest(ClusterFrame{PDC: 0, Seq: 5, Buses: []int{0, 1}, Vm: []float64{1, 1}, Va: []float64{0, 0}})
	if got := <-c.Samples(); got.Seq != 5 {
		t.Fatalf("emitted seq %d, want 5", got.Seq)
	}
	c.ingest(frame(1, 5, 1)) // straggler for the emitted step
	st := c.Stats()
	if st.Late != 1 || st.Pending != 0 || st.Emitted != 1 {
		t.Fatalf("late frame mishandled: %+v", st)
	}
	select {
	case got := <-c.Samples():
		t.Fatalf("late frame re-emitted seq %d", got.Seq)
	default:
	}
}

func TestEvictedSeqStaysEmitted(t *testing.T) {
	c, err := NewCollector(2, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWithin(t, 2*time.Second, "collector close", c.Close)

	for seq := 0; seq < maxPending; seq++ {
		c.ingest(frame(0, seq, 0))
	}
	backdate(t, c, 0, time.Minute)    // make seq 0 unambiguously stalest
	c.ingest(frame(0, maxPending, 0)) // overflow evicts seq 0
	if got := <-c.Samples(); got.Seq != 0 {
		t.Fatalf("evicted seq %d, want 0", got.Seq)
	}
	c.ingest(frame(1, 0, 1)) // straggler for the evicted step
	st := c.Stats()
	if st.Late != 1 || st.Evicted != 1 || st.Pending != maxPending {
		t.Fatalf("evicted seq reopened: %+v", st)
	}
}

func TestSinkReceivesSynchronously(t *testing.T) {
	c, err := NewCollector(2, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWithin(t, 2*time.Second, "collector close", c.Close)

	var got []Assembled
	c.SetSink(func(a Assembled) { got = append(got, a) })
	c.ingest(ClusterFrame{PDC: 0, Seq: 3, Buses: []int{0, 1}, Vm: []float64{1, 2}, Va: []float64{0, 0}})
	if len(got) != 1 || got[0].Seq != 3 || got[0].Sample.Vm[1] != 2 {
		t.Fatalf("sink not invoked before ingest returned: %+v", got)
	}
	select {
	case a := <-c.Samples():
		t.Fatalf("sample leaked onto the channel with a sink attached: %+v", a)
	default:
	}
	if st := c.Stats(); st.Emitted != 1 {
		t.Fatalf("sink delivery not counted: %+v", st)
	}
}

// TestNoDuplicateEmissionUnderRace hammers completion, eviction, and
// the deadline sweep from concurrent PDC readers: whatever path emits a
// sequence first, stragglers for it must be dropped as late — never
// re-assembled and re-reported. Run under -race this also exercises the
// out-of-lock delivery ordering.
func TestNoDuplicateEmissionUnderRace(t *testing.T) {
	c, err := NewCollector(2, "127.0.0.1:0", 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[int]int{}
	c.SetSink(func(a Assembled) {
		mu.Lock()
		counts[a.Seq]++
		mu.Unlock()
	})

	// Two PDCs per bus: the second pair's frames often land after the
	// first pair completed the sequence.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := 0; seq < 2*maxPending; seq++ {
				c.ingest(frame(g, seq, g&1))
			}
		}(g)
	}
	wg.Wait()
	c.Flush()
	closeWithin(t, 2*time.Second, "collector close", c.Close)

	var total uint64
	for seq, n := range counts {
		if n > 1 {
			t.Fatalf("seq %d emitted %d times", seq, n)
		}
		total += uint64(n)
	}
	if st := c.Stats(); st.Emitted != total {
		t.Fatalf("Emitted = %d but sink saw %d samples", st.Emitted, total)
	}
}
