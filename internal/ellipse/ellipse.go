// Package ellipse fits the per-node normal-operation ellipses of Eq. (4)
// in the paper: for node i, all normal-operation phasor points
// x_{i,t} = (Vm_i, Va_i) ∈ R² must satisfy (x-c)ᵀ A (x-c) ≤ 1. A point
// falling outside its node's ellipse is the elementary outage-detection
// event that the capability learning of Eqs. (5)–(7) counts.
package ellipse

import (
	"errors"
	"math"

	"pmuoutage/internal/metrics"
)

// Ellipse is the set Ω = {x ∈ R² : (x-c)ᵀ A (x-c) ≤ 1} with A symmetric
// positive definite.
type Ellipse struct {
	// C is the center.
	C [2]float64
	// A is the symmetric shape matrix [[a11, a12], [a12, a22]].
	A [3]float64 // packed: a11, a12, a22
}

// ErrTooFewPoints is returned when a fit has fewer than two points.
var ErrTooFewPoints = errors.New("ellipse: need at least 2 points to fit")

// Fit computes a covariance-scaled enclosing ellipse: center at the
// sample mean, shape from the inverse sample covariance, scaled so every
// training point lies inside with the given margin (margin 1.0 means the
// farthest training point sits exactly on the boundary; the detector
// uses a small slack like 1.1 so normal noise stays inside).
//
// Degenerate directions (zero variance — e.g. the slack bus angle) are
// regularised with a floor so the ellipse stays proper.
func Fit(vm, va []float64, margin float64) (*Ellipse, error) {
	n := len(vm)
	if n < 2 || len(va) != n {
		return nil, ErrTooFewPoints
	}
	if margin <= 0 {
		margin = 1.1
	}
	var cx, cy float64
	for i := 0; i < n; i++ {
		cx += vm[i]
		cy += va[i]
	}
	cx /= float64(n)
	cy /= float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := vm[i] - cx
		dy := va[i] - cy
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	sxx /= float64(n)
	sxy /= float64(n)
	syy /= float64(n)
	// Variance floor: a tiny fraction of typical per-unit noise keeps
	// constant coordinates (slack angle, DC magnitudes) well-posed.
	const floor = 1e-10
	if sxx < floor {
		sxx = floor
	}
	if syy < floor {
		syy = floor
	}
	// Keep the covariance positive definite.
	maxCross := math.Sqrt(sxx*syy) * 0.999
	if sxy > maxCross {
		sxy = maxCross
	}
	if sxy < -maxCross {
		sxy = -maxCross
	}
	det := sxx*syy - sxy*sxy
	// Inverse covariance.
	i11 := syy / det
	i12 := -sxy / det
	i22 := sxx / det
	// Max Mahalanobis distance over the training points.
	var maxD float64
	for i := 0; i < n; i++ {
		dx := vm[i] - cx
		dy := va[i] - cy
		d := i11*dx*dx + 2*i12*dx*dy + i22*dy*dy
		if d > maxD {
			maxD = d
		}
	}
	maxD = metrics.PositiveFloor(maxD, floor)
	s := 1 / (maxD * margin * margin)
	return &Ellipse{
		C: [2]float64{cx, cy},
		A: [3]float64{i11 * s, i12 * s, i22 * s},
	}, nil
}

// Quad returns the quadratic form (x-c)ᵀ A (x-c); values ≤ 1 are inside.
func (e *Ellipse) Quad(x, y float64) float64 {
	dx := x - e.C[0]
	dy := y - e.C[1]
	return e.A[0]*dx*dx + 2*e.A[1]*dx*dy + e.A[2]*dy*dy
}

// Contains reports whether the point is inside or on the ellipse — the
// membership test x_{i,t} ∈ Ω_i of Eq. (4).
func (e *Ellipse) Contains(x, y float64) bool { return e.Quad(x, y) <= 1 }

// Axes returns the semi-axis lengths (major, minor) of the ellipse.
func (e *Ellipse) Axes() (float64, float64) {
	// Eigenvalues of A; semi-axes are 1/sqrt(lambda).
	tr := e.A[0] + e.A[2]
	det := e.A[0]*e.A[2] - e.A[1]*e.A[1]
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	if l2 <= 0 {
		l2 = math.SmallestNonzeroFloat64
	}
	return 1 / math.Sqrt(l2), 1 / math.Sqrt(l1)
}
