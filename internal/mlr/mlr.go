// Package mlr implements the multinomial-logistic-regression outage
// classifiers the paper compares against ([4], [14], "MLR" in §V). The
// classifier learns one softmax class per training scenario — normal
// operation plus each valid single-line outage — from complete-data
// samples. Missing test entries are mean-imputed, reproducing the peers'
// "assume complete data / ignore missing entries" behaviour whose
// fragility the paper demonstrates.
package mlr

import (
	"fmt"
	"math"
	"math/rand"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
)

// Config tunes training.
type Config struct {
	// Channel selects the feature series (default Angle, matching the
	// subspace detector so the comparison is apples-to-apples).
	Channel dataset.Channel
	// Epochs of full-batch gradient descent (default 300).
	Epochs int
	// LearningRate for gradient descent (default 2.0 — features are
	// standardised, so large steps are stable).
	LearningRate float64
	// L2 regularisation strength (default 1e-3).
	L2 float64
	// Seed for weight initialisation.
	Seed int64
	// NormalMargin is the confidence rule for declaring an outage: the
	// winning outage class must beat the normal class's probability by
	// this factor, otherwise the sample is classified normal (default 1.5).
	// Weak-line outages genuinely overlap the normal region at PMU noise
	// levels, and an uncalibrated argmax flips normal samples into those
	// classes.
	NormalMargin float64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 2
	}
	if c.L2 <= 0 {
		c.L2 = 1e-3
	}
	if c.NormalMargin <= 0 {
		c.NormalMargin = 1.5
	}
	return c
}

// Classifier is a trained softmax regression model over outage classes.
type Classifier struct {
	cfg     Config
	classes []dataset.Scenario // class index -> scenario (index 0 = normal)
	w       [][]float64        // [class][feature+1] weights, last = bias
	mean    []float64          // feature standardisation
	std     []float64
	dim     int
}

// Train fits the classifier on the generated data: class 0 is normal
// operation, classes 1..E are the valid single-line outages.
func Train(d *dataset.Data, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	if d.Normal.T() == 0 {
		return nil, fmt.Errorf("mlr: no normal training samples")
	}
	dim := cfg.Channel.Dim(d.G.N())

	var xs [][]float64
	var ys []int
	classes := []dataset.Scenario{nil}
	for _, s := range d.Normal.Samples {
		xs = append(xs, s.Vector(cfg.Channel))
		ys = append(ys, 0)
	}
	for _, e := range d.ValidLines {
		cls := len(classes)
		classes = append(classes, dataset.Scenario{e})
		for _, s := range d.Outages[e].Samples {
			xs = append(xs, s.Vector(cfg.Channel))
			ys = append(ys, cls)
		}
	}

	// Standardise features: softmax training on raw phasor scales is
	// badly conditioned (angles span ~0.5 rad, magnitudes ~0.02 p.u.).
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, x := range xs {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(xs))
	}
	for _, x := range xs {
		for j, v := range x {
			dlt := v - mean[j]
			std[j] += dlt * dlt
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(xs)))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	norm := func(x []float64) []float64 {
		out := make([]float64, dim)
		for j, v := range x {
			out[j] = (v - mean[j]) / std[j]
		}
		return out
	}
	for i, x := range xs {
		xs[i] = norm(x)
	}

	k := len(classes)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	w := make([][]float64, k)
	for c := range w {
		w[c] = make([]float64, dim+1)
		for j := range w[c] {
			w[c][j] = 0.01 * rng.NormFloat64()
		}
	}

	// Full-batch gradient descent on the softmax cross-entropy.
	probs := make([]float64, k)
	grad := make([][]float64, k)
	for c := range grad {
		grad[c] = make([]float64, dim+1)
	}
	nInv := 1 / float64(len(xs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, x := range xs {
			softmax(w, x, probs)
			for c := 0; c < k; c++ {
				delta := probs[c]
				if c == ys[i] {
					delta--
				}
				if delta == 0 { //gridlint:ignore floatcmp exact-zero gradient fast path; a near-zero delta still contributes correctly below
					continue
				}
				gc := grad[c]
				for j, v := range x {
					gc[j] += delta * v
				}
				gc[dim] += delta
			}
		}
		for c := 0; c < k; c++ {
			wc := w[c]
			gc := grad[c]
			for j := 0; j <= dim; j++ {
				g := gc[j]*nInv + cfg.L2*wc[j]
				wc[j] -= cfg.LearningRate * g
			}
		}
	}
	return &Classifier{cfg: cfg, classes: classes, w: w, mean: mean, std: std, dim: dim}, nil
}

// softmax fills out with class probabilities for the standardised x.
func softmax(w [][]float64, x []float64, out []float64) {
	dim := len(x)
	mx := math.Inf(-1)
	for c, wc := range w {
		s := wc[dim] // bias
		for j, v := range x {
			s += wc[j] * v
		}
		out[c] = s
		if s > mx {
			mx = s
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - mx)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Classify returns the predicted outage set for a sample. Missing
// entries are imputed with the training means — the "ignore missing
// data" strategy of the peer methods.
func (c *Classifier) Classify(s dataset.Sample) []grid.Line {
	cls, _ := c.ClassifyWithProb(s)
	return cls
}

// ClassifyWithProb also returns the winning class probability.
func (c *Classifier) ClassifyWithProb(s dataset.Sample) ([]grid.Line, float64) {
	x := s.Vector(c.cfg.Channel)
	m := s.MaskFor(c.cfg.Channel)
	z := make([]float64, c.dim)
	for j := 0; j < c.dim; j++ {
		v := x[j]
		if m[j] {
			// Mean imputation: standardised value 0.
			z[j] = 0
			continue
		}
		z[j] = (v - c.mean[j]) / c.std[j]
	}
	// Sized by the class table, which softmax fills one entry per weight
	// row: a trained model has len(w) == len(classes), and sizing by the
	// table makes the later classes[best] lookup panic-free by
	// construction.
	probs := make([]float64, len(c.classes))
	softmax(c.w, z, probs)
	best, bestP := 0, probs[0]
	for cls, p := range probs {
		if p > bestP {
			best, bestP = cls, p
		}
	}
	// Confidence rule: an outage call must clearly beat the normal class.
	if best != 0 && bestP < c.cfg.NormalMargin*probs[0] {
		return nil, probs[0]
	}
	sc := c.classes[best]
	if sc.Normal() {
		return nil, bestP
	}
	out := make([]grid.Line, len(sc))
	copy(out, sc)
	return out, bestP
}

// Classes returns the number of classes (1 + valid lines).
func (c *Classifier) Classes() int { return len(c.classes) }
