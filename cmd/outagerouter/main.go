// Command outagerouter is the fleet front-end for outaged: it spreads
// detect and ingest traffic across N backend daemons with health-aware
// least-loaded balancing and fail-over, mirrors a fraction of traffic
// to a canary fleet running a candidate model, and gates promotion of
// that candidate on the structured canary diff report.
//
// Endpoints:
//
//	POST /v1/detect         proxied byte-identically to a primary backend
//	POST /v1/ingest         same, JSON or binary frames (query preserved)
//	POST /v1/reload         broadcast a reload to every primary backend
//	GET  /v1/backends       fleet view: health, ejections, load, shards
//	GET  /v1/fleet          aggregated fleet health: scraped per-backend
//	                        counters, ejection history, windowed SLOs
//	GET  /v1/canary/report  the canary diff report and promotion gates
//	POST /v1/canary/promote reload primaries onto the candidate (gated)
//	GET  /debug/traces      tail-sampled traces; ?id= merges the backends'
//	                        halves into one multi-hop tree
//	GET  /healthz           200 while any primary backend is admissible
//	GET  /metrics           router-level counters and latency histograms
//
// Example:
//
//	outagerouter -addr :8070 -backends http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	  -canary-backends http://10.0.0.9:8080 -candidate <fingerprint> -canary-percent 25
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pmuoutage/internal/obs"
	"pmuoutage/internal/router"
)

func main() {
	var (
		addr       = flag.String("addr", ":8070", "listen address")
		backends   = flag.String("backends", "", "comma-separated primary backend base URLs (required)")
		canaries   = flag.String("canary-backends", "", "comma-separated canary backend base URLs (empty disables canary)")
		candidate  = flag.String("candidate", "", "candidate model fingerprint under canary evaluation")
		percent    = flag.Int("canary-percent", 0, "percent of detect traffic mirrored to the canary fleet (0-100)")
		minPairs   = flag.Int("min-pairs", 20, "promotion gate: minimum shadow pairs")
		tolerance  = flag.Float64("tolerance", 0, "promotion gate: tolerated per-scenario IA/FA regression")
		maxInFl    = flag.Int("max-inflight", 0, "concurrent proxied requests per backend (0 = 256)")
		probeEvery = flag.Duration("probe-every", 250*time.Millisecond, "backend health-probe period")
		fleetWin   = flag.Duration("fleet-window", time.Minute, "rolling window the /v1/fleet SLO signals cover")
		traceCap   = flag.Int("trace-capacity", 256, "retained-trace ring size for GET /debug/traces (0 disables tracing)")
		traceSlow  = flag.Duration("trace-slow", 100*time.Millisecond, "tail sampling keeps traces at least this slow (negative disables the latency rule)")
		traceEvery = flag.Int("trace-sample", 0, "tail sampling also keeps every Nth trace regardless of latency (0 disables)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		smoke      = flag.Bool("smoke", false, "self-test: run a 2-backend fleet with canary promotion in-process, exit")
	)
	flag.Parse()

	if *smoke {
		if err := runFleetSmoke(); err != nil {
			log.Fatalf("serve-fleet-smoke: %v", err)
		}
		fmt.Println("serve-fleet-smoke ok")
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	cfg := router.Config{
		Backends:       splitList(*backends),
		CanaryBackends: splitList(*canaries),
		Candidate:      *candidate,
		CanaryPercent:  *percent,
		MinPairs:       *minPairs,
		Tolerance:      *tolerance,
		MaxInFlight:    *maxInFl,
		ProbeEvery:     *probeEvery,
		FleetWindow:    *fleetWin,
		Logger:         logger,
	}
	if *traceCap > 0 {
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:      *traceCap,
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceEvery,
		})
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := router.New(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("outagerouter listening", "addr", *addr,
		"backends", len(cfg.Backends), "canary_backends", len(cfg.CanaryBackends))

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sdCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// splitList parses a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
